//! Certificate generation: the CA ecosystem for valid certificates and
//! the per-vendor device certificate factory for invalid ones.

use crate::config::ScaleConfig;
use crate::vendors::{CnPolicy, IssuerPolicy, KeyPolicy, ValidityQuirks, VendorProfile};
use rand::Rng;
use silentcert_asn1::{oid, Oid, Time};
use silentcert_crypto::entropy::XorShift64;
use silentcert_crypto::rsa::RsaKeyPair;
use silentcert_crypto::sha1::sha1;
use silentcert_crypto::sig::{KeyPair, SimKeyPair};
use silentcert_x509::{Certificate, CertificateBuilder, Extension, GeneralName, Name};

/// Derive a deterministic sim key pair from a domain-separated label.
pub fn sim_key(parts: &[&str]) -> KeyPair {
    KeyPair::Sim(SimKeyPair::from_seed(parts.join("/").as_bytes()))
}

/// Subject Key Identifier (RFC 5280 method 1): SHA-1 of the SPKI.
fn key_id(key: &KeyPair) -> Vec<u8> {
    sha1(&key.public().to_spki_der()).to_vec()
}

fn day_time(day: i64, secs: i64) -> Time {
    Time::from_unix_seconds(day * 86_400 + secs).expect("simulated days in range")
}

/// One commercial CA brand: a root in the trust store and an issuing
/// intermediate.
#[derive(Debug, Clone)]
pub struct CaBrand {
    pub name: String,
    /// Share of website certificates this brand issues.
    pub weight: f64,
    pub root: Certificate,
    pub intermediate: Certificate,
    pub intermediate_key: KeyPair,
}

/// The CA ecosystem: brands plus filler trust-store roots.
#[derive(Debug, Clone)]
pub struct CaEcosystem {
    pub brands: Vec<CaBrand>,
    /// The full trusted root set (brand roots + fillers).
    pub roots: Vec<Certificate>,
}

impl CaEcosystem {
    /// Build the ecosystem. The first `config.rsa_ca_count` brands use
    /// real RSA keys; the rest use the fast `Sim` scheme.
    pub fn generate(config: &ScaleConfig) -> CaEcosystem {
        // Table 1's top valid issuers, with a generic tail calibrated so a
        // handful of signing keys span half the valid certificates (§5.3).
        let mut named: Vec<(String, f64)> = vec![
            ("Go Daddy Secure Certification Authority".into(), 0.19),
            ("RapidSSL CA".into(), 0.10),
            ("PositiveSSL CA 2".into(), 0.055),
            ("Go Daddy Secure Certificate Authority - G2".into(), 0.047),
            ("GeoTrust DV SSL CA".into(), 0.045),
        ];
        for i in 0..18 {
            named.push((format!("Commercial Web CA {i}"), 0.16 / (1.0 + i as f64)));
        }

        let (nb, na) = (day_time(11_000, 0), day_time(25_000, 0)); // ~2000–2038
        let mut brands = Vec::with_capacity(named.len());
        let mut roots = Vec::new();
        let mut rsa_rng = XorShift64::new(config.seed ^ 0xca5e);
        for (i, (name, weight)) in named.into_iter().enumerate() {
            let (root_key, intermediate_key) = if i < config.rsa_ca_count {
                (
                    KeyPair::Rsa(RsaKeyPair::generate(config.rsa_bits, &mut rsa_rng)),
                    KeyPair::Rsa(RsaKeyPair::generate(config.rsa_bits, &mut rsa_rng)),
                )
            } else {
                (sim_key(&["ca-root", &name]), sim_key(&["ca-int", &name]))
            };
            let root_name = Name::with_common_name(&format!("{name} Root"))
                .and(oid::known::organization_name(), &name);
            let root = CertificateBuilder::new()
                .serial_u64(1)
                .subject(root_name.clone())
                .validity(nb, na)
                .ca(None)
                .extension(Extension::SubjectKeyId(key_id(&root_key)))
                .self_signed(&root_key);
            let intermediate = CertificateBuilder::new()
                .serial_u64(2)
                .subject(Name::with_common_name(&name))
                .issuer(root_name)
                .public_key(intermediate_key.public())
                .validity(nb, na)
                .ca(Some(0))
                .extension(Extension::SubjectKeyId(key_id(&intermediate_key)))
                .extension(Extension::AuthorityKeyId(key_id(&root_key)))
                .sign_with(&root_key);
            roots.push(root.clone());
            brands.push(CaBrand {
                name,
                weight,
                root,
                intermediate,
                intermediate_key,
            });
        }

        // Filler roots so the store has the configured size.
        for i in brands.len()..config.trust_store_size {
            let key = sim_key(&["filler-root", &i.to_string()]);
            roots.push(
                CertificateBuilder::new()
                    .serial_u64(1)
                    .subject(Name::with_common_name(&format!("Global Trust Root {i}")))
                    .validity(nb, na)
                    .ca(None)
                    .self_signed(&key),
            );
        }

        CaEcosystem { brands, roots }
    }

    /// Pick a brand index from a uniform roll in `[0, 1)`.
    pub fn sample_brand(&self, roll: f64) -> usize {
        let total: f64 = self.brands.iter().map(|b| b.weight).sum();
        let target = roll * total;
        let mut acc = 0.0;
        for (i, b) in self.brands.iter().enumerate() {
            acc += b.weight;
            if target < acc {
                return i;
            }
        }
        self.brands.len() - 1
    }

    /// Draw the random inputs a site certificate needs from the caller's
    /// RNG stream.
    ///
    /// Splitting the draw from the (deterministic, signature-heavy) build
    /// lets the simulator consume its world RNG serially — preserving the
    /// exact draw order of a fully serial run — while
    /// [`issue_site_cert_planned`](Self::issue_site_cert_planned) executes
    /// on a worker thread.
    pub fn plan_site_cert(rng: &mut impl Rng) -> SiteCertPlan {
        SiteCertPlan {
            period_roll: rng.gen_range(0..100),
            nb_secs: rng.gen_range(0..86_400),
        }
    }

    /// Issue a website certificate from brand `brand` with the given key
    /// epoch (sites reusing keys across reissues pass the same epoch).
    #[allow(clippy::too_many_arguments)]
    pub fn issue_site_cert(
        &self,
        brand: usize,
        site_id: u64,
        domain: &str,
        key_epoch: u32,
        serial: u64,
        issue_day: i64,
        rng: &mut impl Rng,
    ) -> Certificate {
        let plan = Self::plan_site_cert(rng);
        self.issue_site_cert_planned(brand, site_id, domain, key_epoch, serial, issue_day, &plan)
    }

    /// The pure build+sign half of [`issue_site_cert`](Self::issue_site_cert):
    /// a function of its arguments only, safe to fan out.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_site_cert_planned(
        &self,
        brand: usize,
        site_id: u64,
        domain: &str,
        key_epoch: u32,
        serial: u64,
        issue_day: i64,
        plan: &SiteCertPlan,
    ) -> Certificate {
        let b = &self.brands[brand];
        let site_key = sim_key(&["site", &site_id.to_string(), &key_epoch.to_string()]);
        // Valid-cert validity mix: median ~1.1y, 90th pct ~3.1y (§5.1).
        let period: i64 = match plan.period_roll {
            0..=57 => 398,
            58..=77 => 730,
            78..=89 => 1_095,
            90..=95 => 1_130,
            _ => 1_825,
        };
        let nb = day_time(issue_day, plan.nb_secs);
        let na = day_time(issue_day + period, 0);
        let host = format!("crl.{}", brand_slug(&b.name));
        CertificateBuilder::new()
            .serial_u64(serial)
            .subject(Name::with_common_name(domain))
            .issuer(b.intermediate.subject.clone())
            .public_key(site_key.public())
            .validity(nb, na)
            .extension(Extension::SubjectAltName(vec![
                GeneralName::Dns(domain.to_string()),
                GeneralName::Dns(format!("www.{domain}")),
            ]))
            .extension(Extension::AuthorityKeyId(key_id(&b.intermediate_key)))
            .extension(Extension::CrlDistributionPoints(vec![format!(
                "http://{host}/leaf.crl"
            )]))
            .extension(Extension::AuthorityInfoAccess {
                ocsp: vec![format!("http://ocsp.{}", brand_slug(&b.name))],
                ca_issuers: vec![format!("http://certs.{}/int.der", brand_slug(&b.name))],
            })
            .extension(Extension::CertificatePolicies(vec![Oid::new(&[
                2, 23, 140, 1, 2, 1,
            ])
            .expect("CAB DV policy OID")]))
            .sign_with(&b.intermediate_key)
    }
}

/// Inputs for one device certificate, planned serially by
/// [`DeviceCertFactory::plan_device_cert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCertPlan {
    /// Device id, or the batch-representative id for baked batches.
    entity_id: u64,
    reissue_idx: u32,
    issue_day: i64,
    /// Child RNG seed drawn from the world RNG; `None` for baked batches
    /// (whose stream is fixed by `entity_id`).
    seed: Option<[u8; 32]>,
}

/// Random inputs for one site certificate, drawn serially from the world
/// RNG by [`CaEcosystem::plan_site_cert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCertPlan {
    /// Uniform roll in `[0, 100)` selecting the validity-period bucket.
    ///
    /// `i32`/`i64` here mirror the exact integer widths the pre-split code
    /// drew, so the RNG stream (and with it every downstream byte) is
    /// unchanged.
    period_roll: i32,
    /// NotBefore seconds-of-day in `[0, 86_400)`.
    nb_secs: i64,
}

fn brand_slug(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    s.push_str(".example");
    s
}

/// Per-device certificate factory state shared across the run.
#[derive(Debug, Clone)]
pub struct DeviceCertFactory {
    /// Shared vendor CAs for `IssuerPolicy::VendorCa`.
    vendor_cas: Vec<(Name, KeyPair)>,
    /// Firmware epoch day used when a device has no RTC (2000-01-01).
    epoch_day: i64,
}

impl Default for DeviceCertFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceCertFactory {
    pub fn new() -> DeviceCertFactory {
        let vendor_cas = (0..8u8)
            .map(|i| {
                let key = sim_key(&["vendor-ca", &i.to_string()]);
                (
                    Name::with_common_name(&format!("Device Vendor CA {i}")),
                    key,
                )
            })
            .collect();
        DeviceCertFactory {
            vendor_cas,
            epoch_day: silentcert_asn1::time::days_from_civil(2000, 1, 1),
        }
    }

    /// Key pair a device uses for reissue `reissue_idx` under `policy`.
    pub fn device_key(
        &self,
        policy: KeyPolicy,
        vendor_tag: &str,
        device_id: u64,
        reissue_idx: u32,
    ) -> KeyPair {
        match policy {
            KeyPolicy::GlobalShared => sim_key(&["global-key", vendor_tag]),
            KeyPolicy::PerDevice => sim_key(&["device-key", &device_id.to_string()]),
            KeyPolicy::PerReissue => sim_key(&[
                "reissue-key",
                &device_id.to_string(),
                &reissue_idx.to_string(),
            ]),
            KeyPolicy::SharedBatch(size) => {
                let batch = device_id / u64::from(size.max(1));
                sim_key(&["batch-key", vendor_tag, &batch.to_string()])
            }
        }
    }

    /// The device's subject CN for a given reissue.
    pub fn subject_cn(
        &self,
        profile: &VendorProfile,
        device_id: u64,
        rng: &mut impl Rng,
    ) -> String {
        match profile.cn {
            CnPolicy::FixedShared(s) => s.to_string(),
            CnPolicy::PerDevice(prefix) => format!("{prefix} {device_id}"),
            CnPolicy::DynDns(domain) => format!("dev{device_id:06x}.{domain}"),
            CnPolicy::RandomPrivateIp => {
                format!(
                    "192.168.{}.{}",
                    rng.gen_range(0..256),
                    rng.gen_range(1..255)
                )
            }
            CnPolicy::Empty => String::new(),
        }
    }

    /// Sample `(not_before, not_after)` per the vendor's quirks.
    fn validity(
        &self,
        quirks: &ValidityQuirks,
        issue_day: i64,
        rng: &mut impl Rng,
    ) -> (Time, Time) {
        // Not Before: issue date, firmware epoch, or a future-running clock.
        let roll: f64 = rng.gen();
        let (nb_day, nb_secs) = if roll < quirks.epoch_clock_prob {
            // No RTC: clock restarts at the firmware epoch, so NotBefore is
            // the epoch plus however long the device had been up when it
            // minted the certificate.
            (self.epoch_day, rng.gen_range(0..86_400))
        } else if roll < quirks.epoch_clock_prob + quirks.future_clock_prob {
            (
                issue_day + rng.gen_range(1..1_500),
                rng.gen_range(0..86_400),
            )
        } else if rng.gen_bool(0.78) {
            (issue_day, 0) // midnight: shared NotBefore values (Table 5)
        } else {
            (issue_day, rng.gen_range(0..86_400))
        };
        let nb = day_time(nb_day, nb_secs);
        if rng.gen_bool(quirks.negative_prob) {
            let na = day_time(nb_day - rng.gen_range(1..400), nb_secs);
            return (nb, na);
        }
        let total: f64 = quirks.period_days.iter().map(|&(_, w)| w).sum();
        let target = rng.gen_range(0.0..total);
        let mut acc = 0.0;
        let mut period = quirks.period_days[0].0;
        for &(days, w) in quirks.period_days {
            acc += w;
            if target < acc {
                period = days;
                break;
            }
        }
        // Clamp so GeneralizedTime's year ≤ 9999 always holds.
        let na_day = (nb_day + period).min(silentcert_asn1::time::days_from_civil(9_999, 1, 1));
        (nb, day_time(na_day, nb_secs))
    }

    /// Draw the caller-RNG-dependent inputs for a device certificate.
    ///
    /// Mirrors [`CaEcosystem::plan_site_cert`]: the only interaction with
    /// the world RNG is the 32-byte child seed (baked batches draw
    /// nothing), so planning serially and building on workers replays the
    /// exact serial draw order.
    pub fn plan_device_cert(
        &self,
        profile: &VendorProfile,
        device_id: u64,
        reissue_idx: u32,
        issue_day: i64,
        rng: &mut impl Rng,
    ) -> DeviceCertPlan {
        // Baked defaults: every unit in the batch serves the identical
        // certificate, so derive everything from the batch id and a fixed
        // issue context.
        let (entity_id, reissue_idx, issue_day, seed) = match profile.baked_batch {
            // Represent the whole batch by its first device id (offset out
            // of the per-device id space). Its RNG stream is fixed by the
            // batch id, so no caller draw happens.
            Some(batch) => {
                let rep = device_id / u64::from(batch) * u64::from(batch);
                (u64::from(u32::MAX) + rep, 0, self.epoch_day, None)
            }
            None => {
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                (device_id, reissue_idx, issue_day, Some(seed))
            }
        };
        DeviceCertPlan {
            entity_id,
            reissue_idx,
            issue_day,
            seed,
        }
    }

    /// Issue the device's `reissue_idx`-th certificate on `issue_day`.
    pub fn device_cert(
        &self,
        profile: &VendorProfile,
        device_id: u64,
        reissue_idx: u32,
        issue_day: i64,
        rng: &mut impl Rng,
    ) -> Certificate {
        let plan = self.plan_device_cert(profile, device_id, reissue_idx, issue_day, rng);
        self.build_device_cert(profile, &plan)
    }

    /// The pure build+sign half of [`device_cert`](Self::device_cert): a
    /// function of the profile and plan only, safe to fan out.
    pub fn build_device_cert(&self, profile: &VendorProfile, plan: &DeviceCertPlan) -> Certificate {
        use rand::SeedableRng;
        let (entity_id, reissue_idx, issue_day) =
            (plan.entity_id, plan.reissue_idx, plan.issue_day);
        let mut rng: rand::rngs::StdRng = match plan.seed {
            Some(seed) => rand::rngs::StdRng::from_seed(seed),
            None => rand::rngs::StdRng::seed_from_u64(entity_id),
        };

        let key = self.device_key(profile.key, profile.tag, entity_id, reissue_idx);
        let cn = self.subject_cn(profile, entity_id, &mut rng);
        let subject = if cn.is_empty() && matches!(profile.cn, CnPolicy::Empty) {
            Name::empty()
        } else {
            Name::with_common_name(&cn)
        };
        let (nb, na) = self.validity(&profile.validity, issue_day, &mut rng);

        let serial =
            if profile.serial_fixed || matches!(profile.issuer, IssuerPolicy::PerDeviceName(_)) {
                // PlayBook-style / broken firmware: fixed serial. Combined
                // with a per-device issuer this makes IN+SN stable and
                // linkable; combined with a shared issuer it collides.
                1
            } else {
                rng.gen::<u64>() >> 1
            };
        let mut builder = CertificateBuilder::new()
            .subject(subject.clone())
            .validity(nb, na)
            .serial_u64(serial);

        if profile.tag == "fritz-newkey" {
            builder = builder.extension(Extension::SubjectAltName(vec![
                GeneralName::Dns(format!("dev{entity_id:06x}.myfritz.net")),
                GeneralName::Dns("fritz.fonwlan.box".to_string()),
            ]));
        }
        if let Some(hosts) = profile.san_fixed {
            builder = builder.extension(Extension::SubjectAltName(
                hosts
                    .iter()
                    .map(|h| GeneralName::Dns(h.to_string()))
                    .collect(),
            ));
        } else if matches!(profile.cn, CnPolicy::DynDns(_)) {
            builder = builder.extension(Extension::SubjectAltName(vec![GeneralName::Dns(
                cn.clone(),
            )]));
        }
        if profile.extras.crl {
            builder = builder.extension(Extension::CrlDistributionPoints(vec![format!(
                "http://device-{entity_id}.crl.local/ca.crl"
            )]));
        }
        if profile.extras.aia {
            builder = builder.extension(Extension::AuthorityInfoAccess {
                ocsp: vec![],
                ca_issuers: vec![format!("http://device-{entity_id}.aia.local/ca.der")],
            });
        }
        if profile.extras.ocsp {
            builder = builder.extension(Extension::AuthorityInfoAccess {
                ocsp: vec![format!("http://device-{entity_id}.ocsp.local")],
                ca_issuers: vec![],
            });
        }
        if profile.extras.oid {
            builder = builder.extension(Extension::CertificatePolicies(vec![Oid::new(&[
                1, 3, 6, 1, 4, 1, 99_999, 3, entity_id,
            ])
            .expect("per-device OID")]));
        }

        match profile.issuer {
            IssuerPolicy::SelfSubject => builder.self_signed(&key),
            IssuerPolicy::FixedName(name) => builder
                .issuer(Name::with_common_name(name))
                .public_key(key.public())
                .sign_with(&key),
            IssuerPolicy::PerDeviceName(prefix) => {
                let mac = format!(
                    "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
                    (entity_id >> 40) & 0xff,
                    (entity_id >> 32) & 0xff,
                    (entity_id >> 24) & 0xff,
                    (entity_id >> 16) & 0xff,
                    (entity_id >> 8) & 0xff,
                    entity_id & 0xff
                );
                builder
                    .issuer(Name::with_common_name(&format!("{prefix} {mac}")))
                    .public_key(key.public())
                    .sign_with(&key)
            }
            IssuerPolicy::LocalCa => {
                let ca_key = sim_key(&["local-ca", &entity_id.to_string()]);
                let ca_name = Name::with_common_name(&format!("Local CA {entity_id}"));
                builder
                    .issuer(ca_name)
                    .public_key(key.public())
                    .extension(Extension::AuthorityKeyId(key_id(&ca_key)))
                    .sign_with(&ca_key)
            }
            IssuerPolicy::ForgedCaName(name) => {
                // Signed by an unrelated throwaway key: verifies under
                // neither its own key nor the claimed CA's.
                let garbage = sim_key(&["garbage-signer", &entity_id.to_string()]);
                builder
                    .issuer(Name::with_common_name(name))
                    .public_key(key.public())
                    .sign_with(&garbage)
            }
            IssuerPolicy::VendorCa(pool) => {
                // Skewed choice: CA 0 takes ~40% so top-5 parent keys cover
                // a visible share (§5.3's 37%).
                let pick = if rng.gen_bool(0.4) {
                    0
                } else {
                    rng.gen_range(0..usize::from(pool.max(1)).min(self.vendor_cas.len()))
                };
                let (ca_name, ca_key) = &self.vendor_cas[pick];
                builder
                    .issuer(ca_name.clone())
                    .public_key(key.public())
                    .extension(Extension::AuthorityKeyId(key_id(ca_key)))
                    .sign_with(ca_key)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendors::standard_vendors;
    use rand::SeedableRng;
    use silentcert_validate::{Classification, InvalidityReason, TrustStore, Validator};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn factory() -> DeviceCertFactory {
        DeviceCertFactory::new()
    }

    fn profile(tag: &str) -> VendorProfile {
        standard_vendors()
            .into_iter()
            .find(|p| p.tag == tag)
            .unwrap_or_else(|| panic!("no vendor {tag}"))
    }

    #[test]
    fn ca_ecosystem_validates_site_certs() {
        let config = ScaleConfig::tiny();
        let eco = CaEcosystem::generate(&config);
        assert_eq!(eco.roots.len(), config.trust_store_size);
        let mut v = Validator::new(TrustStore::from_roots(eco.roots.clone()));
        let mut r = rng();
        let cert = eco.issue_site_cert(0, 7, "shop7.example.com", 0, 100, 15_600, &mut r);
        // Complete presented chain: valid, not transvalid.
        let out = v.classify(&cert, std::slice::from_ref(&eco.brands[0].intermediate));
        assert_eq!(
            out,
            Classification::Valid {
                chain_len: 3,
                transvalid: false
            }
        );
        // Pool repair: transvalid.
        v.add_intermediate(&eco.brands[0].intermediate);
        let out = v.classify(&cert, &[]);
        assert_eq!(
            out,
            Classification::Valid {
                chain_len: 3,
                transvalid: true
            }
        );
    }

    #[test]
    fn site_key_epoch_controls_key_reuse() {
        let config = ScaleConfig::tiny();
        let eco = CaEcosystem::generate(&config);
        let mut r = rng();
        let a = eco.issue_site_cert(0, 7, "a.example.com", 0, 1, 15_600, &mut r);
        let b = eco.issue_site_cert(0, 7, "a.example.com", 0, 2, 15_900, &mut r);
        let c = eco.issue_site_cert(0, 7, "a.example.com", 1, 3, 16_200, &mut r);
        assert_eq!(a.public_key, b.public_key); // same epoch: reused key
        assert_ne!(a.public_key, c.public_key); // bumped epoch: fresh key
    }

    #[test]
    fn self_signed_device_cert_classified() {
        let f = factory();
        let p = profile("router-192");
        let mut r = rng();
        let cert = f.device_cert(&p, 5, 0, 15_600, &mut r);
        assert_eq!(cert.subject.common_name(), Some("192.168.1.1"));
        assert!(cert.is_self_signed());
        let v = Validator::new(TrustStore::new());
        assert_eq!(
            v.classify(&cert, &[]),
            Classification::Invalid(InvalidityReason::SelfSigned)
        );
    }

    #[test]
    fn fixed_name_issuer_is_still_self_signed() {
        let f = factory();
        let p = profile("lancom");
        let mut r = rng();
        let cert = f.device_cert(&p, 5, 0, 15_600, &mut r);
        assert_eq!(cert.issuer.common_name(), Some("www.lancom-systems.de"));
        assert!(!cert.is_self_issued());
        assert!(cert.is_self_signed()); // signature verifies under own key
    }

    #[test]
    fn global_key_shared_across_lancom_devices() {
        let f = factory();
        let p = profile("lancom");
        let mut r = rng();
        let a = f.device_cert(&p, 1, 0, 15_600, &mut r);
        let b = f.device_cert(&p, 2, 3, 15_900, &mut r);
        assert_eq!(a.public_key, b.public_key);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fritzbox_stable_key_changing_cert() {
        let f = factory();
        let p = profile("fritzbox");
        let mut r = rng();
        let a = f.device_cert(&p, 9, 0, 15_600, &mut r);
        let b = f.device_cert(&p, 9, 1, 15_660, &mut r);
        let other = f.device_cert(&p, 10, 0, 15_600, &mut r);
        assert_eq!(a.public_key, b.public_key);
        assert_ne!(a.public_key, other.public_key);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // SAN carries the FRITZ!Box hostname.
        let san = a.subject_alt_names().unwrap();
        assert_eq!(san[0], GeneralName::Dns("fritz.fonwlan.box".into()));
    }

    #[test]
    fn local_ca_cert_is_untrusted_not_self_signed() {
        let f = factory();
        let p = profile("local-ca");
        let mut r = rng();
        let cert = f.device_cert(&p, 3, 0, 15_600, &mut r);
        assert!(!cert.is_self_signed());
        assert!(cert.authority_key_id().is_some());
        let v = Validator::new(TrustStore::new());
        assert_eq!(
            v.classify(&cert, &[]),
            Classification::Invalid(InvalidityReason::UntrustedIssuer)
        );
        // Distinct devices have distinct parent CAs (1.7M parent keys).
        let cert2 = f.device_cert(&p, 4, 0, 15_600, &mut r);
        assert_ne!(cert.authority_key_id(), cert2.authority_key_id());
    }

    #[test]
    fn vendor_ca_shares_parent_keys() {
        let f = factory();
        let p = profile("vendor-ca");
        let mut r = rng();
        let akis: Vec<_> = (0..40)
            .map(|i| {
                f.device_cert(&p, i, 0, 15_600, &mut r)
                    .authority_key_id()
                    .unwrap()
                    .to_vec()
            })
            .collect();
        let mut uniq = akis.clone();
        uniq.sort();
        uniq.dedup();
        assert!(
            uniq.len() <= 5,
            "expected ≤5 vendor CAs, got {}",
            uniq.len()
        );
        assert!(uniq.len() >= 2);
    }

    #[test]
    fn playbook_issuer_embeds_mac_and_fixed_serial() {
        let f = factory();
        let p = profile("playbook");
        let mut r = rng();
        let a = f.device_cert(&p, 0xa1b2c3, 0, 15_600, &mut r);
        let b = f.device_cert(&p, 0xa1b2c3, 5, 15_900, &mut r);
        assert!(a.issuer.common_name().unwrap().starts_with("PlayBook: "));
        assert_eq!(a.issuer, b.issuer);
        assert_eq!(a.serial_hex(), b.serial_hex());
        assert_eq!(a.public_key, b.public_key); // tablet keeps its key pair
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn baked_batch_produces_identical_certs() {
        let f = factory();
        let p = profile("baked-default");
        let mut r = rng();
        let batch = p.baked_batch.unwrap() as u64;
        let a = f.device_cert(&p, 0, 0, 15_600, &mut r);
        let b = f.device_cert(&p, batch - 1, 7, 15_900, &mut r);
        let c = f.device_cert(&p, batch, 0, 15_600, &mut r);
        assert_eq!(a.fingerprint(), b.fingerprint()); // same batch: identical
        assert_ne!(a.fingerprint(), c.fingerprint()); // next batch differs
    }

    #[test]
    fn validity_quirks_sampled() {
        let f = factory();
        let p = profile("router-192");
        let mut r = rng();
        let mut negative = 0;
        let mut epoch = 0;
        let n = 600;
        for i in 0..n {
            let cert = f.device_cert(&p, i, 0, 15_600, &mut r);
            if cert.validity_period_days() < 0 {
                negative += 1;
            }
            if cert.not_before.year == 2000 {
                epoch += 1;
            }
            assert!(cert.not_after.year <= 9_999);
        }
        let neg_frac = negative as f64 / n as f64;
        let epoch_frac = epoch as f64 / n as f64;
        assert!(
            (0.02..=0.10).contains(&neg_frac),
            "negative fraction {neg_frac}"
        );
        assert!(
            (0.12..=0.30).contains(&epoch_frac),
            "epoch fraction {epoch_frac}"
        );
    }

    #[test]
    fn crl_linked_vendor_has_stable_per_device_crl() {
        let f = factory();
        let p = profile("crl-linked");
        let mut r = rng();
        let a = f.device_cert(&p, 8, 0, 15_600, &mut r);
        let b = f.device_cert(&p, 8, 1, 15_640, &mut r);
        let c = f.device_cert(&p, 9, 0, 15_600, &mut r);
        assert_ne!(a.public_key, b.public_key); // key unlinkable
        assert_eq!(a.crl_uris(), b.crl_uris()); // CRL links
        assert_ne!(a.crl_uris(), c.crl_uris());
        assert!(!a.aia_ca_issuer_uris().is_empty());
    }
}
