//! Exporting a simulated run as an on-disk scan corpus.
//!
//! Writes the directory layout `silentcert_core::ingest::load_dataset`
//! consumes (`certs.pem`, `scans.csv`, `routing.csv`, `asdb.csv`), giving
//! an end-to-end disk round-trip: simulate → export → ingest → identical
//! analyses. Certificates are streamed to disk during the simulation, so
//! the exporter never holds the DER corpus in memory.
//!
//! Every CSV is written via [`atomic_write`]: the bytes land in a `*.tmp`
//! sibling that is renamed into place only after a successful flush. A
//! crashed export can therefore leave a *missing* CSV (which strict
//! ingest reports as such) but never a truncated-yet-well-formed one that
//! ingest would mistake for a complete corpus. `certs.pem` keeps its
//! streaming path — a torn PEM bundle is structurally detectable (an
//! unterminated block), which is exactly what the fault model in
//! [`crate::faults`] and lenient ingest exercise.

use crate::config::ScaleConfig;
use crate::world::{simulate_streaming, SimOutput};
use silentcert_core::dataset::{Dataset, ScanCompleteness, ScanId};
use silentcert_net::AsType;
use silentcert_x509::pem::pem_encode;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Write `path` atomically: the payload goes to `<path>.tmp`, is flushed,
/// and only then renamed over `path`. On any error the temp file is
/// removed, so a failed write leaves either the old file or nothing —
/// never a truncated new one.
pub fn atomic_write(
    path: &Path,
    write_fn: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = path.with_extension(match path.extension() {
        Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let result = (|| {
        let mut out = BufWriter::new(File::create(&tmp)?);
        write_fn(&mut out)?;
        out.flush()?;
        out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    })();
    match result {
        Ok(()) => fs::rename(&tmp, path),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Write `scans.csv` rows (`day,operator,ip,sha256`) for every
/// observation in `dataset`, skipping those for which `keep` returns
/// false. Observations are already sorted by `(scan, ip, cert)`.
fn write_scans_csv(
    dataset: &Dataset,
    out: &mut dyn Write,
    keep: &dyn Fn(ScanId, silentcert_net::Ipv4) -> bool,
) -> io::Result<()> {
    writeln!(out, "# day,operator,ip,sha256")?;
    for obs in &dataset.observations {
        if !keep(obs.scan, obs.ip) {
            continue;
        }
        let info = dataset.scan(obs.scan);
        let operator = match info.operator {
            silentcert_core::Operator::UMich => "umich",
            silentcert_core::Operator::Rapid7 => "rapid7",
        };
        writeln!(
            out,
            "{},{},{},{}",
            info.day,
            operator,
            obs.ip,
            dataset.cert(obs.cert).fingerprint.to_hex()
        )?;
    }
    Ok(())
}

/// Write `routing.csv` (`day,prefix,asn`), full table per snapshot day.
fn write_routing_csv(dataset: &Dataset, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "# day,prefix,asn")?;
    for (day, table) in dataset.routing.snapshots() {
        let mut rows: Vec<_> = table.iter().collect();
        rows.sort();
        for (prefix, asn) in rows {
            writeln!(out, "{day},{prefix},{}", asn.0)?;
        }
    }
    Ok(())
}

/// Write `asdb.csv` (`asn,country,type,name`; name last — it may contain
/// commas), sorted by ASN.
fn write_asdb_csv(dataset: &Dataset, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "# asn,country,type,name")?;
    let mut infos: Vec<_> = dataset.asdb.iter().collect();
    infos.sort_by_key(|i| i.asn.0);
    for info in infos {
        let ty = match info.as_type {
            AsType::TransitAccess => "transit",
            AsType::Content => "content",
            AsType::Enterprise => "enterprise",
            AsType::Unknown => "unknown",
        };
        writeln!(out, "{},{},{},{}", info.asn.0, info.country, ty, info.name)?;
    }
    Ok(())
}

/// Write the three CSV tables (`scans.csv`, `routing.csv`, `asdb.csv`)
/// of `dataset` into `dir`, each atomically. Re-exporting an ingested
/// corpus through this function reproduces the original files
/// byte-for-byte (the round-trip the disk tests pin down).
pub fn export_tables(dataset: &Dataset, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    atomic_write(&dir.join("scans.csv"), |out| {
        write_scans_csv(dataset, out, &|_, _| true)
    })?;
    atomic_write(&dir.join("routing.csv"), |out| {
        write_routing_csv(dataset, out)
    })?;
    atomic_write(&dir.join("asdb.csv"), |out| write_asdb_csv(dataset, out))
}

/// Like [`export_tables`], but `scans.csv` omits observations of dropped
/// `(scan, ip)` hosts — the probe-level scan runtime's view of a lossy
/// network.
pub(crate) fn export_tables_filtered(
    dataset: &Dataset,
    dir: &Path,
    keep: &dyn Fn(ScanId, silentcert_net::Ipv4) -> bool,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    atomic_write(&dir.join("scans.csv"), |out| {
        write_scans_csv(dataset, out, keep)
    })?;
    atomic_write(&dir.join("routing.csv"), |out| {
        write_routing_csv(dataset, out)
    })?;
    atomic_write(&dir.join("asdb.csv"), |out| write_asdb_csv(dataset, out))
}

/// Write the `completeness.csv` sidecar
/// (`day,operator,probed,answered,retried,gave_up,truncated`), one row
/// per scan in scan order, atomically.
pub fn export_completeness(
    dataset: &Dataset,
    records: &[ScanCompleteness],
    dir: &Path,
) -> io::Result<()> {
    assert_eq!(records.len(), dataset.scans.len(), "one record per scan");
    atomic_write(&dir.join("completeness.csv"), |out| {
        writeln!(
            out,
            "# day,operator,probed,answered,retried,gave_up,truncated"
        )?;
        for (scan, rec) in dataset.scan_ids().zip(records) {
            let info = dataset.scan(scan);
            let operator = match info.operator {
                silentcert_core::Operator::UMich => "umich",
                silentcert_core::Operator::Rapid7 => "rapid7",
            };
            writeln!(
                out,
                "{},{},{},{},{},{},{}",
                info.day,
                operator,
                rec.probed,
                rec.answered,
                rec.retried,
                rec.gave_up,
                rec.truncated,
            )?;
        }
        Ok(())
    })
}

/// Write `roots.pem` — the trust store the dataset was classified
/// against, so a consumer can rebuild an identical validator.
pub(crate) fn export_roots(config: &ScaleConfig, dir: &Path) -> io::Result<()> {
    let eco = crate::certgen::CaEcosystem::generate(config);
    let mut roots_out = BufWriter::new(File::create(dir.join("roots.pem"))?);
    for root in &eco.roots {
        roots_out.write_all(pem_encode("CERTIFICATE", root.to_der()).as_bytes())?;
    }
    roots_out.flush()
}

/// Run the simulation and write the corpus into `dir` (created if
/// missing). Returns the in-memory output as well, so callers can compare
/// disk-ingested results against the original.
pub fn export_corpus(config: &ScaleConfig, dir: &Path) -> std::io::Result<SimOutput> {
    fs::create_dir_all(dir)?;

    // certs.pem — streamed as the simulation generates them. A failed
    // write short-circuits the stream (the sink returns `false`, so no
    // further certificates are encoded) and reports how far the file got,
    // since a partial PEM bundle is exactly the kind of torn corpus the
    // fault model in `faults.rs` describes.
    let mut pem_out = BufWriter::new(File::create(dir.join("certs.pem"))?);
    let mut written = 0usize;
    let mut pem_error: Option<(usize, std::io::Error)> = None;
    let out = simulate_streaming(config, &mut |cert| match pem_out
        .write_all(pem_encode("CERTIFICATE", cert.to_der()).as_bytes())
    {
        Ok(()) => {
            written += 1;
            true
        }
        Err(e) => {
            pem_error = Some((written, e));
            false
        }
    });
    if let Some((pos, e)) = pem_error {
        return Err(std::io::Error::new(
            e.kind(),
            format!("certs.pem: write failed after {pos} complete certificates: {e}"),
        ));
    }
    pem_out.flush()?;

    export_tables(&out.dataset, dir)?;
    export_roots(config, dir)?;
    Ok(out)
}

/// [`export_corpus`], then corrupt the written corpus according to
/// `config.faults` (a no-op for the default plan). Returns the exact
/// [`FaultLedger`](crate::faults::FaultLedger) so callers can reconcile
/// ingest reports against ground truth.
pub fn export_corpus_faulted(
    config: &ScaleConfig,
    dir: &Path,
) -> std::io::Result<(SimOutput, crate::faults::FaultLedger)> {
    let out = export_corpus(config, dir)?;
    let ledger = crate::faults::inject_configured_faults(dir, config)?;
    Ok((out, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_all_files() {
        let dir = std::env::temp_dir().join(format!("silentcert-export-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut config = ScaleConfig::tiny();
        // Shrink further: this test only checks the file plumbing.
        config.n_devices = 60;
        config.n_websites = 25;
        config.umich_scans = 4;
        config.rapid7_scans = 2;
        config.overlap_days = 1;
        let out = export_corpus(&config, &dir).unwrap();
        for f in [
            "certs.pem",
            "scans.csv",
            "routing.csv",
            "asdb.csv",
            "roots.pem",
        ] {
            let meta = fs::metadata(dir.join(f)).unwrap_or_else(|_| panic!("{f} missing"));
            assert!(meta.len() > 0, "{f} empty");
        }
        // Every unique certificate appears exactly once in the PEM bundle.
        let pem = fs::read_to_string(dir.join("certs.pem")).unwrap();
        let blocks = pem.matches("-----BEGIN CERTIFICATE-----").count();
        assert_eq!(blocks, out.dataset.certs.len());
        // scans.csv row count = observations + header.
        let scans = fs::read_to_string(dir.join("scans.csv")).unwrap();
        assert_eq!(scans.lines().count(), out.dataset.len() + 1);
        // No atomic-write temp files left behind.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "leftover {name:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_only_on_success() {
        let dir = std::env::temp_dir().join(format!("silentcert-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");

        // Success path: file appears, temp file does not linger.
        atomic_write(&path, |out| out.write_all(b"# header\n1,2,3\n")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"# header\n1,2,3\n");
        assert!(!dir.join("table.csv.tmp").exists());

        // Failing sink: half the payload is written, then the sink
        // errors. The previous contents must survive untouched and the
        // temp file must be cleaned up.
        let err = atomic_write(&path, |out| {
            out.write_all(b"# header\ntruncated")?;
            Err(io::Error::other("sink failed"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "sink failed");
        assert_eq!(
            fs::read(&path).unwrap(),
            b"# header\n1,2,3\n",
            "old file clobbered"
        );
        assert!(!dir.join("table.csv.tmp").exists(), "temp file left behind");

        // Failing sink with no previous file: nothing is created at all.
        let fresh = dir.join("fresh.csv");
        atomic_write(&fresh, |_| Err(io::Error::other("boom"))).unwrap_err();
        assert!(!fresh.exists());
        assert!(!dir.join("fresh.csv.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_tables_roundtrips_byte_identically() {
        let dir = std::env::temp_dir().join(format!("silentcert-tables-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut config = ScaleConfig::tiny();
        config.n_devices = 60;
        config.n_websites = 25;
        config.umich_scans = 4;
        config.rapid7_scans = 2;
        config.overlap_days = 1;
        let out = export_corpus(&config, &dir).unwrap();
        let before: Vec<Vec<u8>> = ["scans.csv", "routing.csv", "asdb.csv"]
            .iter()
            .map(|f| fs::read(dir.join(f)).unwrap())
            .collect();
        export_tables(&out.dataset, &dir).unwrap();
        for (f, want) in ["scans.csv", "routing.csv", "asdb.csv"].iter().zip(before) {
            assert_eq!(fs::read(dir.join(f)).unwrap(), want, "{f} not byte-stable");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
