//! Exporting a simulated run as an on-disk scan corpus.
//!
//! Writes the directory layout `silentcert_core::ingest::load_dataset`
//! consumes (`certs.pem`, `scans.csv`, `routing.csv`, `asdb.csv`), giving
//! an end-to-end disk round-trip: simulate → export → ingest → identical
//! analyses. Certificates are streamed to disk during the simulation, so
//! the exporter never holds the DER corpus in memory.

use crate::config::ScaleConfig;
use crate::world::{simulate_streaming, SimOutput};
use silentcert_net::AsType;
use silentcert_x509::pem::pem_encode;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Run the simulation and write the corpus into `dir` (created if
/// missing). Returns the in-memory output as well, so callers can compare
/// disk-ingested results against the original.
pub fn export_corpus(config: &ScaleConfig, dir: &Path) -> std::io::Result<SimOutput> {
    fs::create_dir_all(dir)?;

    // certs.pem — streamed as the simulation generates them. A failed
    // write short-circuits the stream (the sink returns `false`, so no
    // further certificates are encoded) and reports how far the file got,
    // since a partial PEM bundle is exactly the kind of torn corpus the
    // fault model in `faults.rs` describes.
    let mut pem_out = BufWriter::new(File::create(dir.join("certs.pem"))?);
    let mut written = 0usize;
    let mut pem_error: Option<(usize, std::io::Error)> = None;
    let out = simulate_streaming(config, &mut |cert| {
        match pem_out.write_all(pem_encode("CERTIFICATE", cert.to_der()).as_bytes()) {
            Ok(()) => {
                written += 1;
                true
            }
            Err(e) => {
                pem_error = Some((written, e));
                false
            }
        }
    });
    if let Some((pos, e)) = pem_error {
        return Err(std::io::Error::new(
            e.kind(),
            format!("certs.pem: write failed after {pos} complete certificates: {e}"),
        ));
    }
    pem_out.flush()?;

    // scans.csv — one observation per line.
    let dataset = &out.dataset;
    let mut scans_out = BufWriter::new(File::create(dir.join("scans.csv"))?);
    writeln!(scans_out, "# day,operator,ip,sha256")?;
    for obs in &dataset.observations {
        let info = dataset.scan(obs.scan);
        let operator = match info.operator {
            silentcert_core::Operator::UMich => "umich",
            silentcert_core::Operator::Rapid7 => "rapid7",
        };
        writeln!(
            scans_out,
            "{},{},{},{}",
            info.day,
            operator,
            obs.ip,
            dataset.cert(obs.cert).fingerprint.to_hex()
        )?;
    }
    scans_out.flush()?;

    // routing.csv — full table per snapshot day.
    let mut routing_out = BufWriter::new(File::create(dir.join("routing.csv"))?);
    writeln!(routing_out, "# day,prefix,asn")?;
    for (day, table) in dataset.routing.snapshots() {
        let mut rows: Vec<_> = table.iter().collect();
        rows.sort();
        for (prefix, asn) in rows {
            writeln!(routing_out, "{day},{prefix},{}", asn.0)?;
        }
    }
    routing_out.flush()?;

    // roots.pem — the trust store the dataset was classified against, so
    // a consumer can rebuild an identical validator.
    let eco = crate::certgen::CaEcosystem::generate(config);
    let mut roots_out = BufWriter::new(File::create(dir.join("roots.pem"))?);
    for root in &eco.roots {
        roots_out.write_all(pem_encode("CERTIFICATE", root.to_der()).as_bytes())?;
    }
    roots_out.flush()?;

    // asdb.csv — asn,country,type,name (name last: it may contain commas).
    let mut asdb_out = BufWriter::new(File::create(dir.join("asdb.csv"))?);
    writeln!(asdb_out, "# asn,country,type,name")?;
    let mut infos: Vec<_> = dataset.asdb.iter().collect();
    infos.sort_by_key(|i| i.asn.0);
    for info in infos {
        let ty = match info.as_type {
            AsType::TransitAccess => "transit",
            AsType::Content => "content",
            AsType::Enterprise => "enterprise",
            AsType::Unknown => "unknown",
        };
        writeln!(asdb_out, "{},{},{},{}", info.asn.0, info.country, ty, info.name)?;
    }
    asdb_out.flush()?;

    Ok(out)
}

/// [`export_corpus`], then corrupt the written corpus according to
/// `config.faults` (a no-op for the default plan). Returns the exact
/// [`FaultLedger`](crate::faults::FaultLedger) so callers can reconcile
/// ingest reports against ground truth.
pub fn export_corpus_faulted(
    config: &ScaleConfig,
    dir: &Path,
) -> std::io::Result<(SimOutput, crate::faults::FaultLedger)> {
    let out = export_corpus(config, dir)?;
    let ledger = crate::faults::inject_configured_faults(dir, config)?;
    Ok((out, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_all_files() {
        let dir = std::env::temp_dir()
            .join(format!("silentcert-export-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut config = ScaleConfig::tiny();
        // Shrink further: this test only checks the file plumbing.
        config.n_devices = 60;
        config.n_websites = 25;
        config.umich_scans = 4;
        config.rapid7_scans = 2;
        config.overlap_days = 1;
        let out = export_corpus(&config, &dir).unwrap();
        for f in ["certs.pem", "scans.csv", "routing.csv", "asdb.csv", "roots.pem"] {
            let meta = fs::metadata(dir.join(f)).unwrap_or_else(|_| panic!("{f} missing"));
            assert!(meta.len() > 0, "{f} empty");
        }
        // Every unique certificate appears exactly once in the PEM bundle.
        let pem = fs::read_to_string(dir.join("certs.pem")).unwrap();
        let blocks = pem.matches("-----BEGIN CERTIFICATE-----").count();
        assert_eq!(blocks, out.dataset.certs.len());
        // scans.csv row count = observations + header.
        let scans = fs::read_to_string(dir.join("scans.csv")).unwrap();
        assert_eq!(scans.lines().count(), out.dataset.len() + 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
