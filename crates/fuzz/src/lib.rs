//! Adversarial validation lab: frankencert-style mutation fuzzing with a
//! differential oracle and a replayable triage corpus.
//!
//! The paper's measurement rests on one classifier's notion of
//! (in)validity. DRLGENCERT and ParsEval both demonstrate that
//! certificate validators disagree wildly on mutated DER, so this crate
//! stress-tests ours differentially:
//!
//! * [`seeds::SeedPool`] — a deterministic seed PKI spanning every
//!   classification bucket, derived from a single `u64`.
//! * [`mutate::Mutator`] — byte-level and semantic DER transforms
//!   (truncation, length corruption, TLV splicing, date swaps, extension
//!   surgery, name grafts, signature bit-flips, chain shuffles).
//! * [`diff::Harness`] — runs the production [`Validator`] and the
//!   independently written [`oracle`] over identical mutants, plus
//!   property oracles (totality, round-trip and fingerprint stability,
//!   "expired is never strictly valid"), minimizing any disagreement.
//! * [`corpus`] — the sha256-named triage corpus under `fuzz/corpus/`,
//!   replayed by tier-1 tests so a fixed discrepancy stays fixed.
//!
//! [`Validator`]: silentcert_validate::Validator
//! [`oracle`]: silentcert_validate::oracle

pub mod case;
pub mod corpus;
pub mod diff;
pub mod mutate;
pub mod obs;
pub mod seeds;

pub use case::FuzzCase;
pub use diff::{bucket, Discrepancy, DiscrepancyKind, FuzzReport, Harness};
pub use mutate::Mutator;
pub use seeds::SeedPool;
