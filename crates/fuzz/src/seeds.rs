//! Deterministic seed universe for the mutation fuzzer.
//!
//! Everything here is derived from a single `u64` seed through the
//! in-tree [`XorShift64`] generator, so two runs with the same seed build
//! byte-identical PKIs regardless of thread count or platform. The seed
//! population deliberately spans the paper's invalidity taxonomy (valid,
//! transvalid, self-signed same/differing names, expired, never-valid,
//! v1, bad signature, orphan, issuer loop, authority-crippled CA) so the
//! mutator starts from every classifier bucket, not just the happy path.

use crate::case::FuzzCase;
use silentcert_asn1::Time;
use silentcert_crypto::entropy::{EntropySource, XorShift64};
use silentcert_crypto::sig::{KeyPair, SigAlgorithm, SimKeyPair};
use silentcert_x509::extensions::key_usage;
use silentcert_x509::{Certificate, CertificateBuilder, Extension, Name};

/// The full seed universe: trust anchors, the intermediate pool, and the
/// starting cases the mutator perturbs.
#[derive(Debug, Clone)]
pub struct SeedPool {
    /// Trust anchors for both classifiers.
    pub roots: Vec<Certificate>,
    /// Intermediates offered to both classifiers' pools (transvalid
    /// repair source).
    pub pool: Vec<Certificate>,
    /// Starting cases covering every classification bucket.
    pub cases: Vec<FuzzCase>,
    /// DER blobs the byte-level mutator can splice in (certificates and
    /// sub-structures from a *different* PKI, frankencert style).
    pub donors: Vec<Vec<u8>>,
}

fn key(rng: &mut XorShift64, label: &str) -> KeyPair {
    let mut seed = Vec::from(label.as_bytes());
    seed.extend_from_slice(&rng.next_u64().to_le_bytes());
    KeyPair::Sim(SimKeyPair::from_seed(&seed))
}

fn window() -> (Time, Time) {
    (
        Time::from_ymd(2012, 1, 1).expect("valid date"),
        Time::from_ymd(2032, 1, 1).expect("valid date"),
    )
}

impl SeedPool {
    /// Build the universe for `seed`.
    pub fn generate(seed: u64) -> SeedPool {
        let mut rng = XorShift64::new(seed ^ 0x5eed_ca5e_u64);
        let (nb, na) = window();

        // Trusted PKI: root -> intermediate -> leaves.
        let root_key = key(&mut rng, "root");
        let root = CertificateBuilder::new()
            .serial_u64(1)
            .subject(Name::with_common_name("Fuzz Trust Root"))
            .validity(nb, na)
            .ca(None)
            .extension(Extension::KeyUsage(
                key_usage::KEY_CERT_SIGN | key_usage::CRL_SIGN,
            ))
            .self_signed(&root_key);
        let inter_key = key(&mut rng, "intermediate");
        let inter = CertificateBuilder::new()
            .serial_u64(2)
            .subject(Name::with_common_name("Fuzz Intermediate CA"))
            .issuer(root.subject.clone())
            .public_key(inter_key.public())
            .validity(nb, na)
            .ca(Some(0))
            .sign_with(&root_key);

        let leaf_key = key(&mut rng, "leaf");
        let site = |cn: &str, serial: u64| {
            CertificateBuilder::new()
                .serial_u64(serial)
                .subject(Name::with_common_name(cn))
                .issuer(inter.subject.clone())
                .public_key(leaf_key.public())
                .validity(nb, na)
                .sign_with(&inter_key)
        };
        let valid_leaf = site("valid.fuzz.example", 10);
        let transvalid_leaf = site("transvalid.fuzz.example", 11);

        // Self-signed, subject == issuer (openssl error-19 shape).
        let dev_key = key(&mut rng, "device");
        let self_signed = CertificateBuilder::new()
            .serial_u64(20)
            .subject(Name::with_common_name("192.168.1.1"))
            .validity(nb, na)
            .self_signed(&dev_key);
        // Self-signed with *differing* names: only the paper's own-key
        // signature check catches this one.
        let sneaky_key = key(&mut rng, "sneaky");
        let self_signed_renamed = CertificateBuilder::new()
            .serial_u64(21)
            .subject(Name::with_common_name("router.local"))
            .issuer(Name::with_common_name("Totally Real CA"))
            .validity(nb, na)
            .self_signed(&sneaky_key);

        // Expired (valid chain, window in the past) and never-valid
        // (NotAfter before NotBefore — 5.38% of invalid certs in the
        // paper).
        let expired = CertificateBuilder::new()
            .serial_u64(30)
            .subject(Name::with_common_name("expired.fuzz.example"))
            .issuer(inter.subject.clone())
            .public_key(leaf_key.public())
            .validity(
                Time::from_ymd(2001, 1, 1).expect("valid date"),
                Time::from_ymd(2002, 1, 1).expect("valid date"),
            )
            .sign_with(&inter_key);
        let never_valid = CertificateBuilder::new()
            .serial_u64(31)
            .subject(Name::with_common_name("backwards.fuzz.example"))
            .issuer(inter.subject.clone())
            .public_key(leaf_key.public())
            .validity(na, nb)
            .sign_with(&inter_key);

        // v1 certificate (no extensions field at all).
        let v1 = CertificateBuilder::new()
            .version_v1()
            .serial_u64(40)
            .subject(Name::with_common_name("ancient.fuzz.example"))
            .validity(nb, na)
            .self_signed(&dev_key);

        // Well-formed encoding, garbage signature bytes.
        let mut junk_sig = vec![0u8; 32];
        rng.fill_bytes(&mut junk_sig);
        let bad_sig = CertificateBuilder::new()
            .serial_u64(50)
            .subject(Name::with_common_name("forged.fuzz.example"))
            .issuer(inter.subject.clone())
            .public_key(leaf_key.public())
            .validity(nb, na)
            .with_raw_signature(SigAlgorithm::Sim, junk_sig);

        // Orphan: issuer no classifier has ever heard of.
        let orphan = CertificateBuilder::new()
            .serial_u64(60)
            .subject(Name::with_common_name("orphan.fuzz.example"))
            .issuer(Name::with_common_name("Nonexistent Issuing CA"))
            .public_key(leaf_key.public())
            .validity(nb, na)
            .sign_with(&key(&mut rng, "nobody"));

        // Two CAs that sign each other: chain search must terminate.
        let loop_a_key = key(&mut rng, "loop-a");
        let loop_b_key = key(&mut rng, "loop-b");
        let loop_a = CertificateBuilder::new()
            .serial_u64(70)
            .subject(Name::with_common_name("Loop CA A"))
            .issuer(Name::with_common_name("Loop CA B"))
            .public_key(loop_a_key.public())
            .validity(nb, na)
            .ca(None)
            .sign_with(&loop_b_key);
        let loop_b = CertificateBuilder::new()
            .serial_u64(71)
            .subject(Name::with_common_name("Loop CA B"))
            .issuer(Name::with_common_name("Loop CA A"))
            .public_key(loop_b_key.public())
            .validity(nb, na)
            .ca(None)
            .sign_with(&loop_a_key);
        let loop_leaf = CertificateBuilder::new()
            .serial_u64(72)
            .subject(Name::with_common_name("loop.fuzz.example"))
            .issuer(loop_a.subject.clone())
            .public_key(leaf_key.public())
            .validity(nb, na)
            .sign_with(&loop_a_key);

        // CA whose KeyUsage forbids certificate signing: chains through it
        // must not validate even though BasicConstraints says CA.
        let crippled_key = key(&mut rng, "crippled");
        let crippled_ca = CertificateBuilder::new()
            .serial_u64(80)
            .subject(Name::with_common_name("Crippled CA"))
            .issuer(root.subject.clone())
            .public_key(crippled_key.public())
            .validity(nb, na)
            .ca(None)
            .extension(Extension::KeyUsage(key_usage::DIGITAL_SIGNATURE))
            .sign_with(&root_key);
        let crippled_leaf = CertificateBuilder::new()
            .serial_u64(81)
            .subject(Name::with_common_name("crippled.fuzz.example"))
            .issuer(crippled_ca.subject.clone())
            .public_key(leaf_key.public())
            .validity(nb, na)
            .sign_with(&crippled_key);

        // Donor material from an unrelated PKI, for TLV splicing.
        let donor_key = key(&mut rng, "donor");
        let donor_cert = CertificateBuilder::new()
            .serial_u64(90)
            .subject(Name::with_common_name("donor.other.example").and(
                silentcert_asn1::oid::known::organization_name(),
                "Donor Org",
            ))
            .validity(nb, na)
            .ca(None)
            .self_signed(&donor_key);

        let cases = vec![
            FuzzCase {
                leaf: valid_leaf.to_der().to_vec(),
                chain: vec![inter.to_der().to_vec()],
            },
            FuzzCase::bare(transvalid_leaf.to_der().to_vec()),
            FuzzCase::bare(self_signed.to_der().to_vec()),
            FuzzCase::bare(self_signed_renamed.to_der().to_vec()),
            FuzzCase {
                leaf: expired.to_der().to_vec(),
                chain: vec![inter.to_der().to_vec()],
            },
            FuzzCase::bare(never_valid.to_der().to_vec()),
            FuzzCase::bare(v1.to_der().to_vec()),
            FuzzCase {
                leaf: bad_sig.to_der().to_vec(),
                chain: vec![inter.to_der().to_vec()],
            },
            FuzzCase::bare(orphan.to_der().to_vec()),
            FuzzCase {
                leaf: loop_leaf.to_der().to_vec(),
                chain: vec![loop_a.to_der().to_vec(), loop_b.to_der().to_vec()],
            },
            FuzzCase {
                leaf: crippled_leaf.to_der().to_vec(),
                chain: vec![crippled_ca.to_der().to_vec()],
            },
        ];
        let donors = vec![
            donor_cert.to_der().to_vec(),
            root.to_der().to_vec(),
            inter.to_der().to_vec(),
            // A few small raw TLVs worth splicing on their own.
            vec![0x05, 0x00],
            vec![0x02, 0x01, 0x00],
            vec![0x30, 0x03, 0x01, 0x01, 0xff],
        ];

        SeedPool {
            roots: vec![root],
            pool: vec![inter, loop_a, loop_b, crippled_ca],
            cases,
            donors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SeedPool::generate(42);
        let b = SeedPool::generate(42);
        let ser = |p: &SeedPool| {
            (
                p.roots
                    .iter()
                    .map(|c| c.to_der().to_vec())
                    .collect::<Vec<_>>(),
                p.pool
                    .iter()
                    .map(|c| c.to_der().to_vec())
                    .collect::<Vec<_>>(),
                p.cases.clone(),
                p.donors.clone(),
            )
        };
        assert_eq!(ser(&a), ser(&b));
        let c = SeedPool::generate(43);
        assert_ne!(ser(&a).0, ser(&c).0, "different seeds differ");
    }

    #[test]
    fn seed_cases_all_parse() {
        let pool = SeedPool::generate(1);
        assert_eq!(pool.cases.len(), 11);
        for case in &pool.cases {
            Certificate::from_der(&case.leaf).expect("seed leaves are well-formed");
            for link in &case.chain {
                Certificate::from_der(link).expect("seed chains are well-formed");
            }
        }
    }
}
