//! The frankencert-style mutation engine.
//!
//! Two layers of transforms, per DRLGENCERT:
//!
//! * **Byte-level**, applied to raw DER with no parsing assumptions:
//!   truncation, bit/byte corruption, length-field corruption (targeted
//!   via the lenient [`scan_tlvs`] scanner), TLV splicing from donor
//!   material, TLV deletion/duplication, and trailing signature
//!   bit-flips.
//! * **Semantic**, applied to certificates that still parse: the cert is
//!   decomposed, one field is perturbed (date swap, extension
//!   injection/deletion/duplication, issuer/subject graft, serial or
//!   version mutation), and it is re-encoded carrying its *original*
//!   signature bytes — well-formed on the wire, cryptographically wrong.
//!
//! Chain-level transforms (reorder, drop, duplicate, donor injection,
//! leaf/link swap) operate on whole [`FuzzCase`]s. All choices are driven
//! by the caller's RNG, so a fixed seed reproduces the exact mutant.

use crate::case::FuzzCase;
use silentcert_asn1::{scan_tlvs, Time};
use silentcert_crypto::entropy::{EntropySource, XorShift64};
use silentcert_x509::extensions::key_usage;
use silentcert_x509::{Certificate, CertificateBuilder, Extension, Name};

/// Upper bound on mutant size; splicing and duplication can otherwise
/// snowball across generations.
const MAX_MUTANT_LEN: usize = 1 << 16;

/// Deterministic mutation engine over DER and fuzz cases.
#[derive(Debug, Clone)]
pub struct Mutator {
    donors: Vec<Vec<u8>>,
}

fn pick(rng: &mut XorShift64, n: usize) -> usize {
    debug_assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

impl Mutator {
    /// Build a mutator over donor DER material (spliced into mutants).
    pub fn new(donors: Vec<Vec<u8>>) -> Mutator {
        assert!(!donors.is_empty(), "mutator needs donor material");
        Mutator { donors }
    }

    /// Derive a mutant case: clone `base`, then apply 1–3 transforms.
    pub fn mutate_case(&self, base: &FuzzCase, rng: &mut XorShift64) -> FuzzCase {
        let mut case = base.clone();
        for _ in 0..1 + pick(rng, 3) {
            match pick(rng, 4) {
                0 if !case.chain.is_empty() => self.mutate_chain(&mut case, rng),
                // Weight toward leaf mutation: the leaf is what is
                // classified, so that is where disagreement lives.
                _ => case.leaf = self.mutate_bytes(&case.leaf, rng),
            }
        }
        case
    }

    /// Apply one transform to a DER blob, preferring semantic transforms
    /// when the input still parses as a certificate.
    pub fn mutate_bytes(&self, der: &[u8], rng: &mut XorShift64) -> Vec<u8> {
        if der.len() < MAX_MUTANT_LEN {
            if let Ok(cert) = Certificate::from_der(der) {
                // Half the time mutate meaning, half the time mutate bytes.
                if rng.next_u64() & 1 == 0 {
                    return self.mutate_semantic(&cert, rng);
                }
            }
        }
        self.mutate_raw(der, rng)
    }

    fn mutate_chain(&self, case: &mut FuzzCase, rng: &mut XorShift64) {
        let chain = &mut case.chain;
        match pick(rng, 5) {
            0 if chain.len() >= 2 => {
                let (a, b) = (pick(rng, chain.len()), pick(rng, chain.len()));
                chain.swap(a, b);
            }
            1 => {
                chain.remove(pick(rng, chain.len()));
            }
            2 if chain.len() < 12 => {
                let link = chain[pick(rng, chain.len())].clone();
                chain.push(link);
            }
            3 if chain.len() < 12 => {
                let donor = self.donors[pick(rng, self.donors.len())].clone();
                chain.insert(pick(rng, chain.len() + 1), donor);
            }
            _ => {
                let i = pick(rng, chain.len());
                std::mem::swap(&mut case.leaf, &mut chain[i]);
            }
        }
    }

    /// Byte-level transforms; total on any input, including empty.
    fn mutate_raw(&self, der: &[u8], rng: &mut XorShift64) -> Vec<u8> {
        let mut out = der.to_vec();
        let tlvs = scan_tlvs(der, 16);
        match pick(rng, 8) {
            // Truncate at a random offset.
            0 if !out.is_empty() => out.truncate(pick(rng, out.len())),
            // Flip one bit.
            1 if !out.is_empty() => {
                let i = pick(rng, out.len());
                out[i] ^= 1 << pick(rng, 8);
            }
            // Overwrite one byte.
            2 if !out.is_empty() => {
                let i = pick(rng, out.len());
                out[i] = rng.next_u64() as u8;
            }
            // Corrupt a length field (targeted: this is the mutation
            // parsers historically get wrong).
            3 if !tlvs.is_empty() => {
                let t = tlvs[pick(rng, tlvs.len())];
                let i = t.len_offset + pick(rng, t.len_octets);
                out[i] = match pick(rng, 4) {
                    0 => 0x00,
                    1 => 0xff,
                    2 => out[i].wrapping_add(1),
                    _ => out[i].wrapping_sub(1),
                };
            }
            // Splice: replace one TLV with a donor TLV.
            4 if !tlvs.is_empty() => {
                let t = tlvs[pick(rng, tlvs.len())];
                let donor = &self.donors[pick(rng, self.donors.len())];
                let donor_tlvs = scan_tlvs(donor, 16);
                let graft: &[u8] = if donor_tlvs.is_empty() {
                    donor
                } else {
                    &donor[donor_tlvs[pick(rng, donor_tlvs.len())].range()]
                };
                out.splice(t.range(), graft.iter().copied());
            }
            // Delete one TLV.
            5 if !tlvs.is_empty() => {
                let t = tlvs[pick(rng, tlvs.len())];
                out.drain(t.range());
            }
            // Duplicate one TLV in place.
            6 if !tlvs.is_empty() => {
                let t = tlvs[pick(rng, tlvs.len())];
                let dup = out[t.range()].to_vec();
                let at = t.end();
                out.splice(at..at, dup);
            }
            // Flip a bit in the trailing bytes (the signature lives at
            // the end of the encoding).
            _ if !out.is_empty() => {
                let tail = out.len().saturating_sub(40);
                let i = tail + pick(rng, out.len() - tail);
                out[i] ^= 1 << pick(rng, 8);
            }
            _ => out.push(rng.next_u64() as u8),
        }
        out.truncate(MAX_MUTANT_LEN);
        out
    }

    /// Semantic transforms: perturb one decoded field and re-encode with
    /// the original signature bytes.
    fn mutate_semantic(&self, cert: &Certificate, rng: &mut XorShift64) -> Vec<u8> {
        let mut version = cert.version;
        let mut serial = cert.serial.clone();
        let mut subject = cert.subject.clone();
        let mut issuer = cert.issuer.clone();
        let mut not_before = cert.not_before;
        let mut not_after = cert.not_after;
        let mut extensions = cert.extensions.clone();
        match pick(rng, 8) {
            // Date swap: NotAfter before NotBefore.
            0 => std::mem::swap(&mut not_before, &mut not_after),
            // Shift a validity edge to an extreme year.
            1 => {
                let extreme = if rng.next_u64() & 1 == 0 { 1950 } else { 2120 };
                let t = Time::from_ymd(extreme, 1, 1).expect("in-range year");
                if rng.next_u64() & 1 == 0 {
                    not_before = t;
                } else {
                    not_after = t;
                }
            }
            // Inject an authority-shaped extension.
            2 => {
                let ext = match pick(rng, 3) {
                    0 => Extension::BasicConstraints {
                        ca: true,
                        path_len: None,
                    },
                    1 => Extension::BasicConstraints {
                        ca: false,
                        path_len: Some(3),
                    },
                    _ => Extension::KeyUsage(match pick(rng, 3) {
                        0 => key_usage::KEY_CERT_SIGN,
                        1 => key_usage::DIGITAL_SIGNATURE,
                        _ => 0,
                    }),
                };
                extensions.insert(pick(rng, extensions.len() + 1), ext);
            }
            // Delete one extension.
            3 if !extensions.is_empty() => {
                extensions.remove(pick(rng, extensions.len()));
            }
            // Duplicate one extension (conflicting-copy shape: which one
            // wins is exactly where validators diverge).
            4 if !extensions.is_empty() => {
                let ext = extensions[pick(rng, extensions.len())].clone();
                extensions.push(ext);
            }
            // Graft a donor name over issuer or subject.
            5 => {
                let donor = self.donor_name(rng);
                if rng.next_u64() & 1 == 0 {
                    issuer = donor;
                } else {
                    subject = donor;
                }
            }
            // Serial mutation: oversized, zero, or negative-looking.
            6 => {
                serial = match pick(rng, 3) {
                    0 => vec![0],
                    1 => vec![0xffu8; 21],
                    _ => vec![0x80],
                };
            }
            // Version mutation: out-of-spec values seen in the wild.
            _ => version = [-1, 0, 1, 3, 99][pick(rng, 5)],
        }
        let mut b = CertificateBuilder::new()
            .version_raw(version)
            .serial_bytes(&serial)
            .subject(subject)
            .issuer(issuer)
            .public_key(cert.public_key.clone())
            .validity(not_before, not_after);
        for ext in extensions {
            b = b.extension(ext);
        }
        b.with_raw_signature(cert.sig_alg, cert.signature.clone())
            .to_der()
            .to_vec()
    }

    /// A subject name harvested from donor material (or a fixed fallback
    /// when no donor parses).
    fn donor_name(&self, rng: &mut XorShift64) -> Name {
        let start = pick(rng, self.donors.len());
        for off in 0..self.donors.len() {
            let donor = &self.donors[(start + off) % self.donors.len()];
            if let Ok(cert) = Certificate::from_der(donor) {
                return cert.subject.clone();
            }
        }
        Name::with_common_name("graft.donor.example")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedPool;

    #[test]
    fn mutation_is_deterministic() {
        let pool = SeedPool::generate(7);
        let m = Mutator::new(pool.donors.clone());
        let mut r1 = XorShift64::new(99);
        let mut r2 = XorShift64::new(99);
        for case in &pool.cases {
            assert_eq!(m.mutate_case(case, &mut r1), m.mutate_case(case, &mut r2));
        }
    }

    #[test]
    fn mutants_differ_and_stay_bounded() {
        let pool = SeedPool::generate(7);
        let m = Mutator::new(pool.donors.clone());
        let mut rng = XorShift64::new(3);
        let base = &pool.cases[0];
        let mut changed = 0;
        for _ in 0..200 {
            let mutant = m.mutate_case(base, &mut rng);
            if mutant != *base {
                changed += 1;
            }
            assert!(mutant.leaf.len() <= MAX_MUTANT_LEN);
        }
        assert!(changed > 150, "mutations mostly change the case: {changed}");
    }

    #[test]
    fn mutate_bytes_is_total_on_junk() {
        let m = Mutator::new(vec![vec![0x05, 0x00]]);
        let mut rng = XorShift64::new(5);
        for input in [&[][..], &[0x00][..], &[0x30, 0xff, 0x00][..]] {
            for _ in 0..50 {
                let _ = m.mutate_bytes(input, &mut rng);
            }
        }
    }
}
