//! A fuzz case: one leaf plus the chain the "server" presented with it.
//!
//! Cases serialize to a line-oriented text format so the triage corpus in
//! `fuzz/corpus/` diffs cleanly under version control, and are identified
//! by the SHA-256 of that serialization — content-addressed, so the same
//! discrepancy found twice lands in the same file.

use silentcert_crypto::sha256::sha256;

/// Magic first line of the on-disk case format.
pub const CASE_HEADER: &str = "silentcert-fuzz-case v1";

/// One differential-testing input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The certificate under test (possibly not valid DER).
    pub leaf: Vec<u8>,
    /// The presented chain, leaf's issuer first (each possibly damaged).
    pub chain: Vec<Vec<u8>>,
}

impl FuzzCase {
    /// A chainless case.
    pub fn bare(leaf: Vec<u8>) -> FuzzCase {
        FuzzCase {
            leaf,
            chain: Vec::new(),
        }
    }

    /// Content-addressed identity: hex SHA-256 of the text serialization.
    pub fn id(&self) -> String {
        hex(&sha256(self.to_text().as_bytes()))
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CASE_HEADER);
        out.push('\n');
        out.push_str("leaf ");
        out.push_str(&hex(&self.leaf));
        out.push('\n');
        for link in &self.chain {
            out.push_str("chain ");
            out.push_str(&hex(link));
            out.push('\n');
        }
        out
    }

    /// Parse the text format. Strict: unknown directives, a missing
    /// header, or non-hex payloads are errors — the corpus is committed
    /// and should never drift silently.
    pub fn from_text(text: &str) -> Result<FuzzCase, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == CASE_HEADER => {}
            other => return Err(format!("bad case header: {other:?}")),
        }
        let mut leaf = None;
        let mut chain = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (kind, payload) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed case line: {line:?}"))?;
            let bytes = unhex(payload).ok_or_else(|| format!("non-hex payload in {kind} line"))?;
            match kind {
                "leaf" if leaf.is_none() => leaf = Some(bytes),
                "leaf" => return Err("duplicate leaf line".into()),
                "chain" => chain.push(bytes),
                other => return Err(format!("unknown case directive {other:?}")),
            }
        }
        Ok(FuzzCase {
            leaf: leaf.ok_or("case has no leaf line")?,
            chain,
        })
    }
}

/// Lowercase hex encoding.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Strict lowercase/uppercase hex decoding; `None` on odd length or
/// non-hex characters. An empty string decodes to an empty payload.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let case = FuzzCase {
            leaf: vec![0x30, 0x00],
            chain: vec![vec![0xde, 0xad], vec![]],
        };
        let text = case.to_text();
        let back = FuzzCase::from_text(&text).expect("parses");
        assert_eq!(back, case);
        assert_eq!(back.id(), case.id());
        assert_eq!(case.id().len(), 64);
    }

    #[test]
    fn rejects_damage() {
        assert!(FuzzCase::from_text("").is_err());
        assert!(FuzzCase::from_text("wrong header\nleaf 00\n").is_err());
        assert!(FuzzCase::from_text(&format!("{CASE_HEADER}\n")).is_err());
        assert!(FuzzCase::from_text(&format!("{CASE_HEADER}\nleaf zz\n")).is_err());
        assert!(FuzzCase::from_text(&format!("{CASE_HEADER}\nleaf 00\nleaf 00\n")).is_err());
        assert!(FuzzCase::from_text(&format!("{CASE_HEADER}\nleaf 00\nbogus 00\n")).is_err());
    }
}
