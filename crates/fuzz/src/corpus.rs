//! The triage corpus: a directory of minimized discrepancy cases.
//!
//! Files are named `<sha256-of-case>.case` and written via tmp + atomic
//! rename, so a crashed fuzz run never leaves a half-written case and two
//! concurrent runs that find the same discrepancy converge on one file.

use crate::case::FuzzCase;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Store `case` in `dir`, creating the directory if needed. Returns the
/// final path and whether the file is new (false = already present, which
/// for a content-addressed name means an identical case).
pub fn store(dir: &Path, case: &FuzzCase) -> std::io::Result<(PathBuf, bool)> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.case", case.id()));
    if path.exists() {
        return Ok((path, false));
    }
    let tmp = dir.join(format!(".{}.case.tmp", case.id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(case.to_text().as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok((path, true))
}

/// Load every `*.case` file in `dir`, sorted by filename so replay order
/// is stable. A missing directory is an empty corpus; an unparseable case
/// file is an error (the corpus is committed — damage means a bad commit,
/// not noise to skip).
pub fn load(dir: &Path) -> Result<Vec<(PathBuf, FuzzCase)>, String> {
    let mut paths = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "case") {
                    paths.push(path);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("opening {}: {e}", dir.display())),
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let case =
            FuzzCase::from_text(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_is_idempotent_and_load_is_sorted() {
        let dir = std::env::temp_dir().join(format!("silentcert-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = FuzzCase::bare(vec![1, 2, 3]);
        let b = FuzzCase::bare(vec![9]);
        let (pa, fresh) = store(&dir, &a).expect("store a");
        assert!(fresh);
        let (pa2, fresh2) = store(&dir, &a).expect("store a again");
        assert!(!fresh2);
        assert_eq!(pa, pa2);
        store(&dir, &b).expect("store b");
        let loaded = load(&dir).expect("load");
        assert_eq!(loaded.len(), 2);
        let mut names: Vec<_> = loaded.iter().map(|(p, _)| p.clone()).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);
        assert!(loaded.iter().any(|(_, c)| *c == a));
        assert!(loaded.iter().any(|(_, c)| *c == b));
        // No tmp files left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(stray.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_empty_corpus() {
        let dir = std::env::temp_dir().join("silentcert-corpus-never-created");
        assert!(load(&dir).expect("empty").is_empty());
    }
}
