//! Process-global fuzzing metric handles (`silentcert_fuzz_*`),
//! registered once and atomics-only afterwards.

use silentcert_obs::metrics::{global, Counter};
use std::sync::{Arc, OnceLock};

/// Mutants generated across all fuzz runs in this process.
pub fn mutants() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| global().counter("silentcert_fuzz_mutants_generated_total"))
}

/// Discrepancies surviving dedup across all fuzz runs.
pub fn discrepancies() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| global().counter("silentcert_fuzz_discrepancies_total"))
}

/// Oracle evaluations spent inside minimization.
pub fn minimize_steps() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| global().counter("silentcert_fuzz_minimize_steps_total"))
}
