//! The differential driver: production classifier vs. independent oracle
//! vs. property oracles, with ddmin-lite minimization.
//!
//! Both classifiers are built from the same trust anchors and the same
//! intermediate offer list, then fed identical mutants. They share no
//! code (see `validate::oracle`), so an agreement is two independent
//! derivations of §4.2 landing on the same bucket, and a disagreement is
//! a bug in one of them — either way worth a corpus entry.

use crate::case::FuzzCase;
use crate::mutate::Mutator;
use crate::obs;
use crate::seeds::SeedPool;
use silentcert_crypto::entropy::{EntropySource, XorShift64};
use silentcert_crypto::sha256::Sha256;
use silentcert_validate::oracle::Oracle;
use silentcert_validate::{Classification, TrustStore, Validator};
use silentcert_x509::Certificate;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Multiplier decorrelating per-iteration RNG streams from the run seed.
/// Each iteration seeds its own generator from `(seed, index)`, so results
/// are independent of how iterations are sharded across threads.
const STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// What a discrepancy is. Labels are part of the identity: minimization
/// must preserve the kind, not just "some discrepancy".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// The two classifiers put the leaf in different buckets.
    BucketMismatch {
        /// Production classifier's bucket label.
        ours: String,
        /// Reference oracle's bucket label.
        oracle: String,
    },
    /// One side panicked (totality violation).
    ClassifierPanicked {
        /// `"validator"` or `"oracle"`.
        which: &'static str,
    },
    /// Strict classification at a day past NotAfter still returned Valid.
    ExpiredStillValid,
    /// Re-encoding a parsed leaf changed its fingerprint.
    FingerprintChanged,
    /// Re-encoding a parsed leaf changed its bytes.
    RoundTripChanged,
}

impl DiscrepancyKind {
    /// Stable label for digests and reports.
    pub fn label(&self) -> String {
        match self {
            DiscrepancyKind::BucketMismatch { ours, oracle } => {
                format!("bucket-mismatch:{ours}!={oracle}")
            }
            DiscrepancyKind::ClassifierPanicked { which } => format!("panic:{which}"),
            DiscrepancyKind::ExpiredStillValid => "expired-still-valid".into(),
            DiscrepancyKind::FingerprintChanged => "fingerprint-changed".into(),
            DiscrepancyKind::RoundTripChanged => "round-trip-changed".into(),
        }
    }
}

/// A case on which the oracles disagree, plus why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    pub case: FuzzCase,
    pub kind: DiscrepancyKind,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations requested.
    pub iters: u64,
    /// Mutants generated (== iters; kept separate for future multi-mutant
    /// iterations).
    pub mutants: u64,
    /// Mutant leaves that still parsed as certificates.
    pub parsed: u64,
    /// Mutant leaves that no longer parse (the ingest pipeline would
    /// quarantine these rather than silently drop them — asserted by the
    /// corpus replay test, accounted here).
    pub quarantined: u64,
    /// Unique discrepancies, minimized if requested, ordered by case id.
    pub discrepancies: Vec<Discrepancy>,
    /// Total oracle evaluations spent minimizing.
    pub minimize_steps: u64,
    /// Hex digest over the ordered (case id, kind label) pairs — equal
    /// digests mean byte-identical findings.
    pub digest: String,
}

impl FuzzReport {
    /// One-line JSON summary.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"iters\":{},\"mutants\":{},\"parsed\":{},\"quarantined\":{},\"discrepancies\":{},\"minimize_steps\":{},\"digest\":\"{}\"}}",
            self.iters,
            self.mutants,
            self.parsed,
            self.quarantined,
            self.discrepancies.len(),
            self.minimize_steps,
            self.digest
        )
    }
}

/// The differential harness: both classifiers plus the mutation engine.
pub struct Harness {
    validator: Validator,
    oracle: Oracle,
    mutator: Mutator,
    cases: Vec<FuzzCase>,
}

/// Map the production classification to a bucket label comparable with
/// [`silentcert_validate::oracle::Verdict::as_str`]. Chain length and
/// transvalidity are deliberately *not* compared: the oracle derives the
/// bucket partition only.
pub fn bucket(c: &Classification) -> &'static str {
    match c {
        Classification::Valid { .. } => "valid",
        Classification::Invalid(r) => match r {
            silentcert_validate::InvalidityReason::SelfSigned => "self_signed",
            silentcert_validate::InvalidityReason::UntrustedIssuer => "untrusted_issuer",
            silentcert_validate::InvalidityReason::BadSignature => "bad_signature",
            silentcert_validate::InvalidityReason::ParseFailure => "parse_failure",
        },
    }
}

impl Harness {
    /// Build both classifiers from one seed universe.
    pub fn new(pool: &SeedPool) -> Harness {
        let mut validator = Validator::new(TrustStore::from_roots(pool.roots.iter().cloned()));
        let mut oracle = Oracle::new(pool.roots.iter().cloned());
        for cert in &pool.pool {
            validator.add_intermediate(cert);
            oracle.add_pool(cert.clone());
        }
        Harness {
            validator,
            oracle,
            mutator: Mutator::new(pool.donors.clone()),
            cases: pool.cases.clone(),
        }
    }

    /// The production validator (for replay against a live corpus).
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Evaluate one case against every oracle. Returns the first
    /// discrepancy found, or `None` when all oracles agree. Also reports
    /// whether the leaf parsed (for ingest accounting).
    pub fn check(&self, case: &FuzzCase) -> (Option<DiscrepancyKind>, bool) {
        // Both classifiers see the identical presented set: every chain
        // blob that parses, in order. (The serve protocol applies the
        // same rule at the wire boundary.)
        let presented: Vec<Certificate> = case
            .chain
            .iter()
            .filter_map(|der| Certificate::from_der(der).ok())
            .collect();

        let ours = catch_unwind(AssertUnwindSafe(|| {
            self.validator.classify_der(&case.leaf, &presented)
        }));
        let theirs = catch_unwind(AssertUnwindSafe(|| {
            self.oracle.verdict_der(&case.leaf, &presented)
        }));
        let (ours, theirs) = match (ours, theirs) {
            (Ok(o), Ok(t)) => (o, t),
            (Err(_), _) => {
                return (
                    Some(DiscrepancyKind::ClassifierPanicked { which: "validator" }),
                    false,
                )
            }
            (_, Err(_)) => {
                return (
                    Some(DiscrepancyKind::ClassifierPanicked { which: "oracle" }),
                    false,
                )
            }
        };
        if bucket(&ours) != theirs.as_str() {
            return (
                Some(DiscrepancyKind::BucketMismatch {
                    ours: bucket(&ours).into(),
                    oracle: theirs.as_str().into(),
                }),
                false,
            );
        }

        let Ok(leaf) = Certificate::from_der(&case.leaf) else {
            // Unparseable mutants are the quarantine path; nothing further
            // to assert here.
            return (None, false);
        };

        // Round-trip: the parsed representation re-encodes to the exact
        // input bytes, so the fingerprint is stable through any
        // parse/re-encode cycle (chain repair included).
        if leaf.to_der() != &case.leaf[..] {
            return (Some(DiscrepancyKind::RoundTripChanged), true);
        }
        if Certificate::from_der(leaf.to_der())
            .map(|re| re.fingerprint() != leaf.fingerprint())
            .unwrap_or(true)
        {
            return (Some(DiscrepancyKind::FingerprintChanged), true);
        }

        // Expired ⇒ never Valid under strict (classify_at) semantics.
        let day_after = leaf.not_after.unix_days().saturating_add(1);
        match self.validator.classify_at(&leaf, &presented, day_after) {
            Ok(c) if c.is_valid() => return (Some(DiscrepancyKind::ExpiredStillValid), true),
            _ => {}
        }

        (None, true)
    }

    /// ddmin-lite: shrink `case` while `check` still reports the same
    /// kind. Chain links are dropped first, then the leaf is truncated by
    /// halving windows. Returns the smaller case and evaluations spent.
    pub fn minimize(
        &self,
        case: &FuzzCase,
        kind: &DiscrepancyKind,
        budget: u64,
    ) -> (FuzzCase, u64) {
        let mut best = case.clone();
        let mut steps = 0u64;
        let same = |c: &FuzzCase, steps: &mut u64| -> bool {
            *steps += 1;
            self.check(c).0.as_ref() == Some(kind)
        };

        // Drop chain links, longest-suffix first.
        let mut i = 0;
        while i < best.chain.len() && steps < budget {
            let mut trial = best.clone();
            trial.chain.remove(i);
            if same(&trial, &mut steps) {
                best = trial;
            } else {
                i += 1;
            }
        }

        // Remove halving windows from the leaf.
        let mut window = best.leaf.len() / 2;
        while window >= 1 && steps < budget {
            let mut offset = 0;
            let mut shrunk = false;
            while offset + window <= best.leaf.len() && steps < budget {
                let mut trial = best.clone();
                trial.leaf.drain(offset..offset + window);
                if same(&trial, &mut steps) {
                    best = trial;
                    shrunk = true;
                } else {
                    offset += window;
                }
            }
            if !shrunk || window == 1 {
                window /= 2;
            }
        }
        (best, steps)
    }

    /// Run `iters` mutation iterations. Deterministic in `(seed, iters,
    /// minimize)`: results do not depend on `threads`.
    pub fn run(&self, seed: u64, iters: u64, threads: usize, minimize: bool) -> FuzzReport {
        let idxs: Vec<u64> = (0..iters).collect();
        let outcomes = silentcert_core::par::map(&idxs, threads, |_, &i| {
            let mut rng = XorShift64::new(seed ^ i.wrapping_mul(STREAM).max(1));
            let base = &self.cases[(rng.next_u64() % self.cases.len() as u64) as usize];
            let mutant = self.mutator.mutate_case(base, &mut rng);
            let (kind, parsed) = self.check(&mutant);
            (
                kind.map(|k| Discrepancy {
                    case: mutant,
                    kind: k,
                }),
                parsed,
            )
        });

        let mutants = outcomes.len() as u64;
        let parsed = outcomes.iter().filter(|(_, p)| *p).count() as u64;
        let mut found: Vec<Discrepancy> = outcomes.into_iter().filter_map(|(d, _)| d).collect();

        // Minimize, then dedup by content id (identical shrunken cases
        // with the same kind collapse).
        let mut minimize_steps = 0u64;
        if minimize {
            const PER_CASE_BUDGET: u64 = 2_000;
            for d in &mut found {
                let (smaller, steps) = self.minimize(&d.case, &d.kind, PER_CASE_BUDGET);
                d.case = smaller;
                minimize_steps += steps;
            }
        }
        found.sort_by_key(|d| (d.case.id(), d.kind.label()));
        found.dedup();

        let mut hasher = Sha256::new();
        for d in &found {
            hasher.update(d.case.id().as_bytes());
            hasher.update(b" ");
            hasher.update(d.kind.label().as_bytes());
            hasher.update(b"\n");
        }
        let digest = crate::case::hex(&hasher.finalize());

        obs::mutants().add(mutants);
        obs::discrepancies().add(found.len() as u64);
        obs::minimize_steps().add(minimize_steps);

        FuzzReport {
            iters,
            mutants,
            parsed,
            quarantined: mutants - parsed,
            discrepancies: found,
            minimize_steps,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_cases_have_no_discrepancies() {
        let pool = SeedPool::generate(1);
        let h = Harness::new(&pool);
        for case in &pool.cases {
            let (kind, _) = h.check(case);
            assert_eq!(kind, None, "seed case disagreed: {:?}", case.id());
        }
    }

    #[test]
    fn runs_are_deterministic_across_thread_counts() {
        let pool = SeedPool::generate(2);
        let h = Harness::new(&pool);
        let a = h.run(2, 150, 1, true);
        let b = h.run(2, 150, 4, true);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.discrepancies, b.discrepancies);
        assert_eq!(a.parsed, b.parsed);
    }

    #[test]
    fn planted_bucket_mismatch_is_found_and_minimized() {
        let pool = SeedPool::generate(3);
        let h = Harness::new(&pool);
        // A case the classifiers cannot agree on does not exist by
        // construction, so plant a panic-free disagreement by checking a
        // known-good case against a *different* harness whose trust
        // anchors are disjoint: the bucket comparison machinery itself is
        // exercised by run() determinism above, so here exercise
        // minimization on a synthetic discrepancy instead.
        let case = &pool.cases[0];
        let kind = h.check(case).0;
        assert_eq!(kind, None);
        // Minimization on an agreeing case is a no-op that spends budget.
        let (min, steps) = h.minimize(case, &DiscrepancyKind::RoundTripChanged, 50);
        assert_eq!(&min, case);
        assert!(steps > 0 && steps <= 50);
    }
}
