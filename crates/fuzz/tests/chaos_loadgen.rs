//! The PR's chaos acceptance check: a mutation-rate loadgen run against
//! a live daemon (frankencert payloads + injected worker panics +
//! transport faults) must end with a clean drain, and every 500 the
//! clients saw must map to a journaled panic record — no unjournaled
//! 500s, no crash, and a journal that replays without mismatches.

use silentcert_crypto::entropy::XorShift64;
use silentcert_fuzz::{Mutator, SeedPool};
use silentcert_serve::loadgen::{self, ClientFaultPlan, LoadgenOptions};
use silentcert_serve::{journal, server, BreakerConfig, ServeConfig, PANIC_RESULT};
use silentcert_validate::{TrustStore, Validator};
use std::sync::Arc;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The request mix: every seed case (chains included) plus mutated
/// variants of each leaf, plus chaos panic frames.
fn mutated_mix(pool: &SeedPool) -> Vec<String> {
    let mutator = Mutator::new(pool.donors.clone());
    let mut rng = XorShift64::new(0xfeed_face);
    let mut lines = Vec::new();
    for (i, case) in pool.cases.iter().enumerate() {
        let chain = case
            .chain
            .iter()
            .map(|der| format!("\"{}\"", hex(der)))
            .collect::<Vec<_>>()
            .join(",");
        lines.push(format!(
            r#"{{"op":"classify","id":"seed{i}","cert":"{}","chain":[{chain}]}}"#,
            hex(&case.leaf)
        ));
        for round in 0..3 {
            let mutant = mutator.mutate_bytes(&case.leaf, &mut rng);
            lines.push(format!(
                r#"{{"op":"classify","id":"mut{i}-{round}","cert":"{}","chain":[{chain}]}}"#,
                hex(&mutant)
            ));
        }
    }
    for i in 0..3 {
        lines.push(format!(r#"{{"op":"chaos_panic","id":"p{i}"}}"#));
    }
    lines
}

#[test]
fn mutated_loadgen_drains_clean_with_every_500_journaled() {
    let pool = SeedPool::generate(5);
    let journal_path =
        std::env::temp_dir().join(format!("silentcert-fuzz-chaos-{}", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let make_validator = || {
        let mut v = Validator::new(TrustStore::from_roots(pool.roots.iter().cloned()));
        for cert in &pool.pool {
            v.add_intermediate(cert);
        }
        Arc::new(v)
    };

    let config = ServeConfig {
        workers: 3,
        queue_capacity: 64,
        read_timeout_ms: 200,
        deadline_ms: 2_000,
        journal_path: Some(journal_path.clone()),
        enable_chaos_ops: true,
        breaker: BreakerConfig {
            // Keep the breaker out of the way: this test is about
            // journaling and drain, not trip thresholds.
            max_error_rate: 0.95,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = server::start(config, make_validator()).expect("bind");
    let addr = handle.addr().to_string();

    let requests = mutated_mix(&pool);
    let report = loadgen::run(
        &LoadgenOptions {
            addr,
            connections: 4,
            requests: 300,
            qps: 0,
            faults: ClientFaultPlan {
                disconnect_rate: 0.02,
                garbage_rate: 0.03,
                ..ClientFaultPlan::default()
            },
            ..LoadgenOptions::default()
        },
        &requests,
    );

    // Mutants classify (200) or are rejected at the frame boundary (400);
    // 500s come only from the injected panics. Nothing else.
    assert!(report.code_200 > 0, "mutants should still classify");
    assert!(report.code_500 > 0, "chaos panics should surface as 500s");
    assert_eq!(report.code_other, 0, "no unexpected response codes");

    handle.shutdown();
    let summary = handle.wait();
    assert!(summary.clean, "drain must be clean: {summary:?}");
    assert_eq!(summary.force_shed, 0, "no requests abandoned at drain");

    // Every 500 the clients saw is backed by a journaled panic record.
    let readout = journal::read_journal(&journal_path).expect("journal readable");
    assert!(!readout.truncated_tail, "daemon exited cleanly");
    let journaled_panics = readout
        .entries
        .iter()
        .filter(|e| e.result == PANIC_RESULT)
        .count();
    assert!(
        journaled_panics as u64 >= report.code_500,
        "unjournaled 500s: {} journaled panic records < {} client-visible 500s",
        journaled_panics,
        report.code_500
    );

    // And the journal replays against a fresh validator with zero
    // mismatches — mutated payloads classify identically offline.
    let replayed = journal::replay(&journal_path, &make_validator()).expect("journal replays");
    assert_eq!(replayed.entries, summary.journal_entries);
    assert_eq!(replayed.mismatches, 0, "replay must be byte-identical");
    assert_eq!(replayed.panics, journaled_panics);

    let _ = std::fs::remove_file(&journal_path);
}
