//! The ingest property oracle, end to end: a corpus of frankencert
//! mutants written as a dataset must round-trip through lenient ingest
//! with every record accounted for — parsed into the dataset, kept as an
//! addressable parse-failure record, or quarantined with its payload
//! preserved on disk. Nothing is ever silently dropped.

use silentcert_core::ingest::{load_dataset_with, IngestOptions};
use silentcert_crypto::entropy::XorShift64;
use silentcert_fuzz::{Mutator, SeedPool};
use silentcert_validate::{TrustStore, Validator};
use silentcert_x509::pem::pem_encode;
use std::collections::BTreeSet;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("silentcert-fuzz-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn mutants_round_trip_through_lenient_ingest_or_quarantine() {
    let pool = SeedPool::generate(3);
    let mutator = Mutator::new(pool.donors.clone());
    let mut rng = XorShift64::new(0xc0ffee);

    // 200 mutants (every seed case perturbed, round-robin), PEM-armored
    // into a dataset directory with an empty scan file.
    let mut mutants: Vec<Vec<u8>> = Vec::new();
    for i in 0..200usize {
        let case = &pool.cases[i % pool.cases.len()];
        mutants.push(mutator.mutate_bytes(&case.leaf, &mut rng));
    }
    let dir = temp_dir("ingest");
    let quarantine = dir.join("quarantine");
    let mut certs_pem = String::new();
    for m in &mutants {
        certs_pem.push_str(&pem_encode("CERTIFICATE", m));
    }
    // One deliberately corrupt armored block: must be quarantined (with
    // its payload preserved), not silently skipped.
    certs_pem
        .push_str("-----BEGIN CERTIFICATE-----\n!!!not base64!!!\n-----END CERTIFICATE-----\n");
    std::fs::write(dir.join("certs.pem"), certs_pem).expect("write certs.pem");
    std::fs::write(dir.join("scans.csv"), "# no observations\n").expect("write scans.csv");

    let mut validator = Validator::new(TrustStore::from_roots(pool.roots.iter().cloned()));
    let opts = IngestOptions {
        quarantine_dir: Some(quarantine.clone()),
        ..IngestOptions::lenient()
    };
    let (dataset, report) =
        load_dataset_with(&dir, &mut validator, &opts).expect("lenient ingest never errors");

    // Full accounting: every armored block either decoded (then parsed or
    // became a parse-failure record) or was quarantined.
    assert_eq!(report.pem_blocks, mutants.len() + 1);
    assert_eq!(report.pem_bad_blocks, 1, "the corrupt block quarantines");
    assert_eq!(
        report.certs_parsed + report.cert_parse_failures,
        mutants.len(),
        "every well-armored mutant is accounted for: {report}"
    );
    assert!(report.certs_parsed > 0, "some mutants still parse");
    assert!(report.cert_parse_failures > 0, "some mutants are mangled");
    assert_eq!(report.classify_panics, 0, "classification is total");

    // The dataset interns by fingerprint: distinct DER payloads (parsed
    // or not) all stay addressable; duplicates merge, none vanish.
    let distinct: BTreeSet<[u8; 32]> = mutants
        .iter()
        .map(|m| silentcert_crypto::sha256(m))
        .collect();
    assert_eq!(dataset.certs.len(), distinct.len());

    // The quarantined payload was preserved byte-for-byte on disk.
    assert_eq!(report.quarantine_files.len(), 1);
    assert_eq!(report.quarantine_write_errors, 0);
    let preserved = std::fs::read(&report.quarantine_files[0]).expect("quarantine file readable");
    assert_eq!(
        preserved, b"!!!not base64!!!\n",
        "payload preserved verbatim"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
