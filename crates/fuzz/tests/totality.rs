//! Classifier totality: every byte string — random garbage, damaged DER,
//! and adversarially nested TLV towers — lands in exactly one
//! classification bucket, on both the production validator and the
//! independent oracle, without panicking. This is the property the paper
//! relies on when it reports percentages over *all* scanned certificates:
//! no input may fall outside the taxonomy.

use proptest::prelude::*;
use silentcert_fuzz::{bucket, Harness, SeedPool};
use silentcert_validate::oracle::Verdict;

const BUCKETS: [&str; 5] = [
    "valid",
    "self_signed",
    "untrusted_issuer",
    "bad_signature",
    "parse_failure",
];

fn harness() -> Harness {
    Harness::new(&SeedPool::generate(7))
}

/// DER-encode a length (short or long form, as the value requires).
fn push_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|b| **b == 0).count();
        out.push(0x80 | (bytes.len() - skip) as u8);
        out.extend_from_slice(&bytes[skip..]);
    }
}

/// Wrap `content` under a tower of constructed TLVs, one per tag in
/// `tags` — arbitrary depth, arbitrary (low-number) tags.
fn nest(tags: &[u8], content: &[u8]) -> Vec<u8> {
    let mut cur = content.to_vec();
    for tag in tags {
        let mut out = vec![0x20 | (tag & 0x1f) | (tag & 0xc0)];
        push_len(&mut out, cur.len());
        out.append(&mut cur);
        cur = out;
    }
    cur
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte strings: both classifiers answer, agree on the
    /// bucket, and the bucket is one of the five taxonomy labels.
    #[test]
    fn arbitrary_bytes_classify_totally(der in proptest::collection::vec(any::<u8>(), 0..600)) {
        let h = harness();
        let ours = bucket(&h.validator().classify_der(&der, &[]));
        prop_assert!(BUCKETS.contains(&ours), "unknown bucket {ours}");
        // The oracle is equally total (it is exercised through the same
        // harness in `check`, which also compares the two).
        let case = silentcert_fuzz::FuzzCase::bare(der);
        let (discrepancy, _) = h.check(&case);
        prop_assert!(discrepancy.is_none(), "classifiers disagree: {discrepancy:?}");
    }

    /// Nested TLV towers of arbitrary depth (up to 64 deep): the parser
    /// must recurse-limit rather than overflow, and classification still
    /// lands in exactly one bucket.
    #[test]
    fn nested_tlv_towers_classify_totally(
        tags in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let h = harness();
        let der = nest(&tags, &payload);
        // The lenient scanner must also survive the tower.
        let _ = silentcert_asn1::scan_tlvs(&der, 256);
        let ours = bucket(&h.validator().classify_der(&der, &[]));
        prop_assert!(BUCKETS.contains(&ours), "unknown bucket {ours}");
        let case = silentcert_fuzz::FuzzCase::bare(der);
        let (discrepancy, _) = h.check(&case);
        prop_assert!(discrepancy.is_none(), "classifiers disagree: {discrepancy:?}");
    }
}

/// The bucket partition is exhaustive *and* mutually exclusive: each
/// verdict string maps to exactly one slot of the five-way taxonomy.
#[test]
fn verdict_labels_cover_the_taxonomy_once() {
    let verdicts = [
        Verdict::Valid,
        Verdict::SelfSigned,
        Verdict::UntrustedIssuer,
        Verdict::BadSignature,
        Verdict::ParseFailure,
    ];
    let mut seen = std::collections::BTreeSet::new();
    for v in verdicts {
        assert!(BUCKETS.contains(&v.as_str()), "stray label {}", v.as_str());
        assert!(seen.insert(v.as_str()), "duplicate label {}", v.as_str());
    }
    assert_eq!(seen.len(), BUCKETS.len());
}
