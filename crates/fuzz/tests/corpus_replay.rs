//! Tier-1 replay of the committed triage corpus (`fuzz/corpus/` at the
//! workspace root). Every stored case is a discrepancy that was found,
//! minimized, and *fixed* — replaying it through the current harness
//! must come back clean, so a regression on any historical bug fails
//! `cargo test` without needing a fuzzing round.

use silentcert_fuzz::{corpus, Harness, SeedPool};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let harness = Harness::new(&SeedPool::generate(1));
    let cases = corpus::load(&corpus_dir()).expect("triage corpus is readable");
    assert!(
        !cases.is_empty(),
        "the committed corpus should seed at least one case ({})",
        corpus_dir().display()
    );
    let mut regressions = Vec::new();
    for (path, case) in &cases {
        if let (Some(kind), _) = harness.check(case) {
            regressions.push(format!("{}: {}", path.display(), kind.label()));
        }
    }
    assert!(
        regressions.is_empty(),
        "corpus cases reproduce fixed discrepancies:\n{}",
        regressions.join("\n")
    );
}

/// Corpus files are content-addressed: the filename stem is the case id.
#[test]
fn corpus_files_are_content_addressed() {
    for (path, case) in corpus::load(&corpus_dir()).expect("triage corpus is readable") {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 stem");
        assert_eq!(stem, case.id(), "{} is misnamed", path.display());
    }
}
