//! Property-based tests for IPv4/prefix handling and longest-prefix
//! matching.

use proptest::prelude::*;
use silentcert_net::{AsNumber, Ipv4, Prefix, PrefixTable, RoutingHistory};

proptest! {
    #[test]
    fn ip_display_parse_roundtrip(raw in any::<u32>()) {
        let ip = Ipv4(raw);
        let parsed: Ipv4 = ip.to_string().parse().unwrap();
        prop_assert_eq!(parsed, ip);
    }

    #[test]
    fn aggregates_are_prefixes_of_the_address(raw in any::<u32>()) {
        let ip = Ipv4(raw);
        prop_assert_eq!(ip.slash8(), raw >> 24);
        prop_assert_eq!(ip.slash16(), raw >> 16);
        prop_assert_eq!(ip.slash24(), raw >> 8);
    }

    #[test]
    fn prefix_contains_its_own_range(raw in any::<u32>(), len in 0u8..=32, offset in any::<u64>()) {
        let p = Prefix::new(Ipv4(raw), len);
        let inside = p.addr(offset % p.size());
        prop_assert!(p.contains(inside));
        prop_assert_eq!(Prefix::new(inside, len), p);
        // Display/parse round trip.
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn lpm_returns_longest_matching_prefix(
        raw in any::<u32>(),
        lens in proptest::collection::btree_set(0u8..=32, 1..6),
    ) {
        // Announce nested prefixes of one address with distinct ASes.
        let ip = Ipv4(raw);
        let mut table = PrefixTable::new();
        let lens: Vec<u8> = lens.into_iter().collect();
        for (i, &len) in lens.iter().enumerate() {
            table.announce(Prefix::new(ip, len), AsNumber(i as u32));
        }
        // The longest announced prefix must win for the address itself.
        let (matched, asn) = table.lookup(ip).unwrap();
        let longest = *lens.last().unwrap();
        prop_assert_eq!(matched.len(), longest);
        prop_assert_eq!(asn, AsNumber(lens.len() as u32 - 1));
    }

    #[test]
    fn lpm_never_matches_outside_announced_space(
        base in any::<u32>(),
        probe in any::<u32>(),
    ) {
        let p = Prefix::new(Ipv4(base), 16);
        let mut table = PrefixTable::new();
        table.announce(p, AsNumber(1));
        match table.lookup(Ipv4(probe)) {
            Some((matched, _)) => prop_assert!(matched.contains(Ipv4(probe))),
            None => prop_assert!(!p.contains(Ipv4(probe))),
        }
    }

    #[test]
    fn routing_history_is_piecewise_constant(
        days in proptest::collection::btree_set(0i64..10_000, 1..5),
        probe_day in 0i64..12_000,
    ) {
        let days: Vec<i64> = days.into_iter().collect();
        let mut history = RoutingHistory::new();
        let prefix: Prefix = "10.0.0.0/8".parse().unwrap();
        for (i, &day) in days.iter().enumerate() {
            let mut t = PrefixTable::new();
            t.announce(prefix, AsNumber(i as u32));
            history.add_snapshot(day, t);
        }
        let expected = days.iter().rposition(|&d| d <= probe_day);
        let got = history.lookup_asn(probe_day, "10.1.2.3".parse().unwrap());
        prop_assert_eq!(got, expected.map(|i| AsNumber(i as u32)));
    }

    #[test]
    fn cn_ip_heuristic_agrees_with_parser(s in "[0-9.]{1,18}") {
        prop_assert_eq!(
            silentcert_net::ip::looks_like_ipv4(&s),
            s.parse::<Ipv4>().is_ok()
        );
    }
}
