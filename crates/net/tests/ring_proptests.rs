//! Property tests for the consistent-hash ring: the two stability
//! guarantees the cluster's failover correctness rests on.
//!
//! * Removing one shard remaps **only** that shard's keys (minimal
//!   movement) — a shard kill must not reshuffle the rest of the fleet.
//! * Re-adding the shard restores the original assignment
//!   byte-identically — a restarted shard resumes exactly its old
//!   keyspace, nothing more and nothing less.

use proptest::prelude::*;
use silentcert_net::Ring;

/// Build a ring over `shards` and return every key's owner.
fn assignments(ring: &Ring, keys: &[Vec<u8>]) -> Vec<u32> {
    keys.iter().map(|k| ring.lookup(k).unwrap()).collect()
}

proptest! {
    #[test]
    fn removing_a_shard_remaps_only_its_keys(
        shard_count in 2u32..8,
        victim_idx in any::<u32>(),
        replicas in 1u32..96,
        nkeys in 50usize..300,
        key_seed in any::<u64>(),
    ) {
        let victim = victim_idx % shard_count;
        let keys: Vec<Vec<u8>> = (0..nkeys)
            .map(|i| format!("key-{key_seed}-{i}").into_bytes())
            .collect();

        let mut ring = Ring::new(replicas);
        for s in 0..shard_count {
            ring.insert(s);
        }
        let before = assignments(&ring, &keys);

        ring.remove(victim);
        let after = assignments(&ring, &keys);

        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            // Every key moves off the victim, and keys the victim never
            // owned keep their assignment exactly (minimal movement).
            prop_assert!(*a != victim, "key {} still routed to removed shard", i);
            if *b != victim {
                prop_assert!(a == b, "key {} moved although its owner survived", i);
            }
        }
    }

    #[test]
    fn re_adding_a_shard_restores_the_assignment_byte_identically(
        shard_count in 2u32..8,
        victim_idx in any::<u32>(),
        replicas in 1u32..96,
        nkeys in 50usize..300,
        key_seed in any::<u64>(),
    ) {
        let victim = victim_idx % shard_count;
        let keys: Vec<Vec<u8>> = (0..nkeys)
            .map(|i| format!("key-{key_seed}-{i}").into_bytes())
            .collect();

        let mut ring = Ring::new(replicas);
        for s in 0..shard_count {
            ring.insert(s);
        }
        let original_ring = ring.clone();
        let before = assignments(&ring, &keys);

        ring.remove(victim);
        ring.insert(victim);

        // The ring's internal state — not just the sampled assignments —
        // must be identical, so *every* possible key is restored.
        prop_assert_eq!(&ring, &original_ring);
        prop_assert_eq!(assignments(&ring, &keys), before);
    }

    #[test]
    fn successor_is_the_post_removal_owner(
        shard_count in 2u32..6,
        replicas in 16u32..64,
        nkeys in 20usize..100,
        key_seed in any::<u64>(),
    ) {
        // The hedge target (ring successor skipping the primary) is
        // exactly where the key lands if the primary is removed — the
        // two failover paths (hedge vs ejection) agree on placement.
        let keys: Vec<Vec<u8>> = (0..nkeys)
            .map(|i| format!("key-{key_seed}-{i}").into_bytes())
            .collect();
        let mut ring = Ring::new(replicas);
        for s in 0..shard_count {
            ring.insert(s);
        }
        for key in &keys {
            let primary = ring.lookup(key).unwrap();
            let hedge = ring.successor(key, &[primary]).unwrap();
            let mut without = ring.clone();
            without.remove(primary);
            prop_assert_eq!(without.lookup(key).unwrap(), hedge);
        }
    }
}
