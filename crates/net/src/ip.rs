//! IPv4 addresses as transparent `u32` newtypes.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
///
/// Stored as the host-order `u32`, which makes prefix masking and aggregate
/// keys (`/8`, `/16`, `/24`) cheap bit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Build from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The containing /8 network key (the top octet).
    pub fn slash8(self) -> u32 {
        self.0 >> 24
    }

    /// The containing /16 network key.
    pub fn slash16(self) -> u32 {
        self.0 >> 16
    }

    /// The containing /24 network key.
    pub fn slash24(self) -> u32 {
        self.0 >> 8
    }

    /// Whether the address falls in RFC 1918 private space.
    pub fn is_private(self) -> bool {
        let o = self.octets();
        o[0] == 10 || (o[0] == 172 && (16..=31).contains(&o[1])) || (o[0] == 192 && o[1] == 168)
    }
}

/// Errors parsing an address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError;

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address")
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ipv4 {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Ipv4, ParseIpError> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or(ParseIpError)?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseIpError);
            }
            // Reject leading zeros ("01") to keep the format canonical.
            if part.len() > 1 && part.starts_with('0') {
                return Err(ParseIpError);
            }
            *slot = part.parse().map_err(|_| ParseIpError)?;
        }
        if parts.next().is_some() {
            return Err(ParseIpError);
        }
        Ok(Ipv4(u32::from_be_bytes(octets)))
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Whether a string looks like a dotted-quad IPv4 address — the check the
/// paper applies to Common Names ("46.9% of certificates' Common Names appear
/// to be an IPv4 address") before excluding them from CN-based linking.
pub fn looks_like_ipv4(s: &str) -> bool {
    s.parse::<Ipv4>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0.0.0.0", "192.168.1.1", "255.255.255.255", "8.8.8.8"] {
            assert_eq!(s.parse::<Ipv4>().unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "1.2.3.x",
            "01.2.3.4",
            " 1.2.3.4",
            "1..2.3",
        ] {
            assert!(s.parse::<Ipv4>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn aggregates() {
        let ip = Ipv4::from_octets(192, 168, 12, 34);
        assert_eq!(ip.slash8(), 192);
        assert_eq!(ip.slash16(), (192 << 8) | 168);
        assert_eq!(ip.slash24(), (192 << 16) | (168 << 8) | 12);
    }

    #[test]
    fn private_space() {
        assert!("10.1.2.3".parse::<Ipv4>().unwrap().is_private());
        assert!("172.16.0.1".parse::<Ipv4>().unwrap().is_private());
        assert!("172.31.255.255".parse::<Ipv4>().unwrap().is_private());
        assert!("192.168.1.1".parse::<Ipv4>().unwrap().is_private());
        assert!(!"172.32.0.1".parse::<Ipv4>().unwrap().is_private());
        assert!(!"8.8.8.8".parse::<Ipv4>().unwrap().is_private());
    }

    #[test]
    fn cn_heuristic() {
        assert!(looks_like_ipv4("192.168.1.1"));
        assert!(!looks_like_ipv4("fritz.box"));
        assert!(!looks_like_ipv4("WD2GO 293822"));
        assert!(!looks_like_ipv4(""));
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!("1.2.3.4".parse::<Ipv4>().unwrap() < "1.2.3.5".parse::<Ipv4>().unwrap());
        assert!("2.0.0.0".parse::<Ipv4>().unwrap() > "1.255.255.255".parse::<Ipv4>().unwrap());
    }
}
