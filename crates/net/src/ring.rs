//! Consistent-hash ring for shard placement.
//!
//! The cluster router fingerprints each request (SHA-256 of the leaf
//! certificate DER) and asks the ring which shard owns that key. The
//! ring is a classic consistent-hash circle: every shard contributes a
//! fixed set of virtual points derived *only* from its shard id, and a
//! key is owned by the first point clockwise from the key's hash.
//!
//! Two properties the cluster leans on, both pinned by proptests:
//!
//! * **Minimal movement** — removing a shard remaps only the keys that
//!   shard owned; every other key keeps its assignment. This is what
//!   keeps a shard kill from invalidating the whole fleet's routing
//!   (and per-shard caches) during failover.
//! * **Byte-identical restore** — because points are a pure function of
//!   the shard id, re-adding a shard rebuilds exactly the points it had
//!   before, so the assignment function returns to its original state
//!   bit-for-bit. A restarted shard resumes ownership of precisely its
//!   old keyspace.
//!
//! The point hash is a keyed FNV-1a/splitmix64 construction, not a
//! cryptographic hash: ring placement only needs uniform dispersion,
//! and keeping it dependency-free leaves this crate std-only. Keys fed
//! to [`Ring::lookup`] are expected to already be fingerprints (or any
//! byte string); the ring hashes them once more for circle position.

/// 64-bit FNV-1a over `bytes`, finalized with splitmix64 so short and
/// structured inputs (like `"shard-3:17"`) still disperse uniformly.
fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shard's virtual point for replica `replica` — a pure function of
/// `(shard, replica)`, which is what makes remove + re-add restore the
/// original ring byte-identically.
fn point(shard: u32, replica: u32) -> u64 {
    let mut tag = [0u8; 12];
    tag[..4].copy_from_slice(b"ring");
    tag[4..8].copy_from_slice(&shard.to_be_bytes());
    tag[8..].copy_from_slice(&replica.to_be_bytes());
    hash64(&tag)
}

/// A consistent-hash ring over shard ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Sorted by `(point, shard)`; the shard tiebreak makes the order —
    /// and therefore every lookup — deterministic even on the
    /// astronomically unlikely point collision.
    points: Vec<(u64, u32)>,
    replicas: u32,
}

impl Ring {
    /// An empty ring whose shards will each contribute `replicas`
    /// virtual points (more points, smoother key distribution; 64 is a
    /// reasonable default for single-digit shard counts).
    pub fn new(replicas: u32) -> Ring {
        Ring {
            points: Vec::new(),
            replicas: replicas.max(1),
        }
    }

    /// Add `shard` to the ring. Idempotent.
    pub fn insert(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        for replica in 0..self.replicas {
            self.points.push((point(shard, replica), shard));
        }
        self.points.sort_unstable();
    }

    /// Remove `shard` from the ring. Idempotent.
    pub fn remove(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
    }

    pub fn contains(&self, shard: u32) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        if self.points.is_empty() {
            0
        } else {
            self.points.len() / self.replicas as usize
        }
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Member shard ids in ascending order.
    pub fn shards(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The shard owning `key`: the first virtual point clockwise from
    /// the key's circle position (wrapping at the top).
    pub fn lookup(&self, key: &[u8]) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard)
    }

    /// Walk clockwise from `key` and return the first owner whose shard
    /// id is not in `exclude` — the "next ring successor" a hedged retry
    /// targets when the primary is dead or slow.
    pub fn successor(&self, key: &[u8], exclude: &[u32]) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !exclude.contains(&shard) {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i}").into_bytes()).collect()
    }

    #[test]
    fn lookup_is_deterministic_and_total() {
        let mut ring = Ring::new(64);
        for s in 0..4 {
            ring.insert(s);
        }
        for key in keys(200) {
            let a = ring.lookup(&key).unwrap();
            let b = ring.lookup(&key).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn all_shards_receive_some_keys() {
        let mut ring = Ring::new(64);
        for s in 0..3 {
            ring.insert(s);
        }
        let mut owned = [0usize; 3];
        for key in keys(3_000) {
            owned[ring.lookup(&key).unwrap() as usize] += 1;
        }
        for (s, n) in owned.iter().enumerate() {
            assert!(*n > 0, "shard {s} owns no keys: {owned:?}");
        }
    }

    #[test]
    fn successor_skips_excluded_shards() {
        let mut ring = Ring::new(64);
        for s in 0..3 {
            ring.insert(s);
        }
        for key in keys(100) {
            let primary = ring.lookup(&key).unwrap();
            let next = ring.successor(&key, &[primary]).unwrap();
            assert_ne!(primary, next);
        }
        assert_eq!(ring.successor(b"k", &[0, 1, 2]), None);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(64);
        assert_eq!(ring.lookup(b"k"), None);
        assert_eq!(ring.successor(b"k", &[]), None);
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut ring = Ring::new(16);
        ring.insert(7);
        ring.insert(7);
        assert_eq!(ring.len(), 1);
        ring.remove(7);
        ring.remove(7);
        assert!(ring.is_empty());
    }
}
