//! Longest-prefix-match tables and their history over time.

use crate::asdb::AsNumber;
use crate::ip::Ipv4;
use crate::prefix::Prefix;
use std::collections::{BTreeMap, HashMap};

/// A prefix-to-AS mapping with longest-prefix-match lookup.
///
/// Implemented as one hash map per prefix length, probed from /32 down;
/// simple, cache-friendly, and O(33) worst case per lookup — appropriate
/// for the table sizes a RouteViews snapshot produces.
#[derive(Debug, Clone)]
pub struct PrefixTable {
    /// `by_len[len]` maps masked base address → origin AS.
    by_len: [Option<HashMap<u32, AsNumber>>; 33],
    count: usize,
}

impl Default for PrefixTable {
    fn default() -> Self {
        PrefixTable {
            by_len: std::array::from_fn(|_| None),
            count: 0,
        }
    }
}

impl PrefixTable {
    /// Empty table.
    pub fn new() -> PrefixTable {
        PrefixTable::default()
    }

    /// Announce `prefix` as originated by `asn`, replacing any previous
    /// origin for the identical prefix.
    pub fn announce(&mut self, prefix: Prefix, asn: AsNumber) {
        let slot = self.by_len[prefix.len() as usize].get_or_insert_with(HashMap::new);
        if slot.insert(prefix.base().0, asn).is_none() {
            self.count += 1;
        }
    }

    /// Withdraw a prefix. Returns whether it was present.
    pub fn withdraw(&mut self, prefix: Prefix) -> bool {
        if let Some(slot) = &mut self.by_len[prefix.len() as usize] {
            if slot.remove(&prefix.base().0).is_some() {
                self.count -= 1;
                return true;
            }
        }
        false
    }

    /// Longest-prefix-match lookup: the origin AS and matching prefix.
    pub fn lookup(&self, ip: Ipv4) -> Option<(Prefix, AsNumber)> {
        for len in (0..=32u8).rev() {
            if let Some(slot) = &self.by_len[len as usize] {
                let masked = Prefix::new(ip, len);
                if let Some(&asn) = slot.get(&masked.base().0) {
                    return Some((masked, asn));
                }
            }
        }
        None
    }

    /// Just the origin AS.
    pub fn lookup_asn(&self, ip: Ipv4) -> Option<AsNumber> {
        self.lookup(ip).map(|(_, asn)| asn)
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no prefixes are announced.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate over all `(prefix, asn)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, AsNumber)> + '_ {
        self.by_len.iter().enumerate().flat_map(|(len, slot)| {
            slot.iter().flat_map(move |m| {
                m.iter()
                    .map(move |(&base, &asn)| (Prefix::new(Ipv4(base), len as u8), asn))
            })
        })
    }
}

/// Prefix-to-AS mappings over time, mirroring the paper's use of *historic*
/// RouteViews data: lookups are answered from the most recent snapshot at
/// or before the query day.
#[derive(Debug, Clone, Default)]
pub struct RoutingHistory {
    /// Snapshots keyed by day number (days since Unix epoch).
    snapshots: BTreeMap<i64, PrefixTable>,
}

impl RoutingHistory {
    /// Empty history.
    pub fn new() -> RoutingHistory {
        RoutingHistory::default()
    }

    /// Install a snapshot effective from `day` onward.
    pub fn add_snapshot(&mut self, day: i64, table: PrefixTable) {
        self.snapshots.insert(day, table);
    }

    /// The snapshot in effect on `day`, if any exists at or before it.
    pub fn snapshot_at(&self, day: i64) -> Option<&PrefixTable> {
        self.snapshots.range(..=day).next_back().map(|(_, t)| t)
    }

    /// Longest-prefix-match lookup as of `day`.
    pub fn lookup(&self, day: i64, ip: Ipv4) -> Option<(Prefix, AsNumber)> {
        self.snapshot_at(day)?.lookup(ip)
    }

    /// Origin AS as of `day`.
    pub fn lookup_asn(&self, day: i64, ip: Ipv4) -> Option<AsNumber> {
        self.lookup(day, ip).map(|(_, asn)| asn)
    }

    /// Iterate over `(effective day, table)` snapshots in day order.
    pub fn snapshots(&self) -> impl Iterator<Item = (i64, &PrefixTable)> {
        self.snapshots.iter().map(|(&d, t)| (d, t))
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether there are no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTable::new();
        t.announce(p("10.0.0.0/8"), AsNumber(1));
        t.announce(p("10.1.0.0/16"), AsNumber(2));
        t.announce(p("10.1.2.0/24"), AsNumber(3));
        assert_eq!(t.lookup_asn(ip("10.1.2.3")), Some(AsNumber(3)));
        assert_eq!(t.lookup_asn(ip("10.1.3.4")), Some(AsNumber(2)));
        assert_eq!(t.lookup_asn(ip("10.9.9.9")), Some(AsNumber(1)));
        assert_eq!(t.lookup_asn(ip("11.0.0.1")), None);
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().0, p("10.1.2.0/24"));
    }

    #[test]
    fn announce_replace_withdraw() {
        let mut t = PrefixTable::new();
        t.announce(p("10.0.0.0/8"), AsNumber(1));
        t.announce(p("10.0.0.0/8"), AsNumber(9)); // replace, not duplicate
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_asn(ip("10.0.0.1")), Some(AsNumber(9)));
        assert!(t.withdraw(p("10.0.0.0/8")));
        assert!(!t.withdraw(p("10.0.0.0/8")));
        assert!(t.is_empty());
        assert_eq!(t.lookup_asn(ip("10.0.0.1")), None);
    }

    #[test]
    fn default_route_supported() {
        let mut t = PrefixTable::new();
        t.announce(p("0.0.0.0/0"), AsNumber(42));
        assert_eq!(t.lookup_asn(ip("200.1.2.3")), Some(AsNumber(42)));
    }

    #[test]
    fn iter_covers_all() {
        let mut t = PrefixTable::new();
        t.announce(p("10.0.0.0/8"), AsNumber(1));
        t.announce(p("20.0.0.0/8"), AsNumber(2));
        t.announce(p("10.5.0.0/16"), AsNumber(3));
        let mut got: Vec<_> = t.iter().collect();
        got.sort();
        assert_eq!(got.len(), 3);
        assert!(got.contains(&(p("10.5.0.0/16"), AsNumber(3))));
    }

    #[test]
    fn history_selects_latest_at_or_before() {
        let mut h = RoutingHistory::new();
        let mut t1 = PrefixTable::new();
        t1.announce(p("10.0.0.0/8"), AsNumber(1));
        let mut t2 = PrefixTable::new();
        t2.announce(p("10.0.0.0/8"), AsNumber(2));
        h.add_snapshot(100, t1);
        h.add_snapshot(200, t2);
        assert_eq!(h.lookup_asn(99, ip("10.0.0.1")), None);
        assert_eq!(h.lookup_asn(100, ip("10.0.0.1")), Some(AsNumber(1)));
        assert_eq!(h.lookup_asn(199, ip("10.0.0.1")), Some(AsNumber(1)));
        assert_eq!(h.lookup_asn(200, ip("10.0.0.1")), Some(AsNumber(2)));
        assert_eq!(h.lookup_asn(10_000, ip("10.0.0.1")), Some(AsNumber(2)));
    }
}
