//! Network substrate: IPv4 addresses, CIDR prefixes, longest-prefix-match
//! routing tables, and AS metadata.
//!
//! This crate stands in for the external datasets the paper consumes:
//! CAIDA's RouteViews prefix-to-AS mapping (a [`PrefixTable`] /
//! [`RoutingHistory`]), the AS classification dataset ([`AsType`]), and the
//! AS-to-organization dataset (country codes on [`AsInfo`]). It also
//! hosts the consistent-hash [`Ring`] the cluster router uses to place
//! request fingerprints onto daemon shards.

pub mod asdb;
pub mod ip;
pub mod prefix;
pub mod ring;
pub mod table;

pub use asdb::{AsDatabase, AsInfo, AsNumber, AsType};
pub use ip::Ipv4;
pub use prefix::Prefix;
pub use ring::Ring;
pub use table::{PrefixTable, RoutingHistory};
