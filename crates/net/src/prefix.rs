//! CIDR prefixes.

use crate::ip::Ipv4;
use std::fmt;
use std::str::FromStr;

/// A CIDR prefix (`base/len`), with the base always masked to the length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// Build a prefix; the base is masked down to `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(base: Ipv4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            base: base.0 & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network base address.
    pub fn base(self) -> Ipv4 {
        Ipv4(self.base)
    }

    /// The prefix length (CIDR mask bits, not a container size).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(self, ip: Ipv4) -> bool {
        ip.0 & Self::mask(self.len) == self.base
    }

    /// Number of addresses covered.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address inside the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    pub fn addr(self, i: u64) -> Ipv4 {
        assert!(i < self.size(), "offset {i} outside /{}", self.len);
        Ipv4(self.base + i as u32)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(Ipv4(other.base))
    }
}

/// Errors parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError;

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR prefix")
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Prefix, ParsePrefixError> {
        let (ip, len) = s.split_once('/').ok_or(ParsePrefixError)?;
        let ip: Ipv4 = ip.parse().map_err(|_| ParsePrefixError)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError)?;
        if len > 32 {
            return Err(ParsePrefixError);
        }
        Ok(Prefix::new(ip, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4(self.base), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn base_is_masked() {
        assert_eq!(p("192.168.1.77/24").to_string(), "192.168.1.0/24");
        assert_eq!(p("255.255.255.255/0").to_string(), "0.0.0.0/0");
    }

    #[test]
    fn contains() {
        let pfx = p("10.1.0.0/16");
        assert!(pfx.contains("10.1.2.3".parse().unwrap()));
        assert!(pfx.contains("10.1.255.255".parse().unwrap()));
        assert!(!pfx.contains("10.2.0.0".parse().unwrap()));
        assert!(p("0.0.0.0/0").contains("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn size_and_addr() {
        assert_eq!(p("10.0.0.0/24").size(), 256);
        assert_eq!(p("1.2.3.4/32").size(), 1);
        assert_eq!(p("10.0.0.0/24").addr(5).to_string(), "10.0.0.5");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn addr_out_of_range_panics() {
        let _ = p("10.0.0.0/24").addr(256);
    }

    #[test]
    fn covers() {
        assert!(p("10.0.0.0/8").covers(p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(p("11.0.0.0/16")));
    }

    #[test]
    fn rejects_malformed() {
        for s in ["10.0.0.0", "10.0.0.0/33", "x/8", "10.0.0.0/x", "/8"] {
            assert!(s.parse::<Prefix>().is_err(), "{s:?}");
        }
    }
}
