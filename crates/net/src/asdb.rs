//! Autonomous-system metadata.
//!
//! Stands in for CAIDA's AS classification and AS-to-organization datasets:
//! each AS carries a type (used by Table 2's breakdown) and a country code
//! (used by §7.3's cross-country movement analysis).

use std::collections::HashMap;
use std::fmt;

/// An AS number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsNumber(pub u32);

impl fmt::Display for AsNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// CAIDA-style AS classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsType {
    /// ISPs and transit providers (where the paper finds 94.1% of invalid
    /// certificates).
    TransitAccess,
    /// Hosting and content networks.
    Content,
    /// Enterprise networks.
    Enterprise,
    /// Unclassified.
    Unknown,
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsType::TransitAccess => "Transit/Access",
            AsType::Content => "Content",
            AsType::Enterprise => "Enterprise",
            AsType::Unknown => "Unknown",
        };
        write!(f, "{s}")
    }
}

/// Metadata for one AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    pub asn: AsNumber,
    /// Organization name, e.g. `"Deutsche Telekom AG"`.
    pub name: String,
    /// ISO 3166-1 alpha-3 country code, e.g. `"DEU"`.
    pub country: String,
    pub as_type: AsType,
}

/// Lookup table of AS metadata.
#[derive(Debug, Clone, Default)]
pub struct AsDatabase {
    infos: HashMap<AsNumber, AsInfo>,
}

impl AsDatabase {
    /// Empty database.
    pub fn new() -> AsDatabase {
        AsDatabase::default()
    }

    /// Insert (or replace) an AS record.
    pub fn insert(&mut self, info: AsInfo) {
        self.infos.insert(info.asn, info);
    }

    /// Metadata for an AS, if known.
    pub fn get(&self, asn: AsNumber) -> Option<&AsInfo> {
        self.infos.get(&asn)
    }

    /// The AS type, defaulting to `Unknown` for unlisted ASes (matching
    /// how the paper treats ASes missing from CAIDA's classification).
    pub fn as_type(&self, asn: AsNumber) -> AsType {
        self.infos.get(&asn).map_or(AsType::Unknown, |i| i.as_type)
    }

    /// The country code, if known.
    pub fn country(&self, asn: AsNumber) -> Option<&str> {
        self.infos.get(&asn).map(|i| i.country.as_str())
    }

    /// Display name like `"#3320 Deutsche Telekom AG (DEU)"` (Table 3's
    /// row format).
    pub fn display_name(&self, asn: AsNumber) -> String {
        match self.infos.get(&asn) {
            Some(i) => format!("#{} {} ({})", asn.0, i.name, i.country),
            None => format!("#{} <unknown>", asn.0),
        }
    }

    /// Number of known ASes.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterate over all records.
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.infos.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsDatabase {
        let mut db = AsDatabase::new();
        db.insert(AsInfo {
            asn: AsNumber(3320),
            name: "Deutsche Telekom AG".into(),
            country: "DEU".into(),
            as_type: AsType::TransitAccess,
        });
        db.insert(AsInfo {
            asn: AsNumber(26496),
            name: "GoDaddy.com, LLC".into(),
            country: "USA".into(),
            as_type: AsType::Content,
        });
        db
    }

    #[test]
    fn lookups() {
        let db = sample();
        assert_eq!(db.as_type(AsNumber(3320)), AsType::TransitAccess);
        assert_eq!(db.as_type(AsNumber(99999)), AsType::Unknown);
        assert_eq!(db.country(AsNumber(26496)), Some("USA"));
        assert_eq!(db.country(AsNumber(99999)), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn display_name_format() {
        let db = sample();
        assert_eq!(
            db.display_name(AsNumber(3320)),
            "#3320 Deutsche Telekom AG (DEU)"
        );
        assert_eq!(db.display_name(AsNumber(7)), "#7 <unknown>");
    }

    #[test]
    fn insert_replaces() {
        let mut db = sample();
        db.insert(AsInfo {
            asn: AsNumber(3320),
            name: "DTAG".into(),
            country: "DEU".into(),
            as_type: AsType::TransitAccess,
        });
        assert_eq!(db.get(AsNumber(3320)).unwrap().name, "DTAG");
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn as_number_display() {
        assert_eq!(AsNumber(7922).to_string(), "AS7922");
    }
}
