//! A hashed timer wheel for per-request deadlines.
//!
//! The server gives every queued request a deadline and schedules it
//! here; the supervisor thread calls [`TimerWheel::advance`] on each
//! housekeeping tick and fires whatever expired, which lets the waiting
//! connection answer `408` *and* lets workers skip requests that are
//! already dead — under overload the queue would otherwise fill with
//! work nobody is waiting for.
//!
//! Classic hashed-wheel layout: `slots` buckets of `tick_ms` granularity,
//! each holding the timers that hash onto it. A timer more than one
//! rotation out simply stays in its bucket until its deadline really is
//! due (checked on expiry), so far-future deadlines cost nothing extra.
//! Time is caller-supplied milliseconds — virtual-clock compatible.

/// A timer wheel holding values of type `T` (the server stores the
/// request's response slot).
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// Bucket granularity in milliseconds.
    tick_ms: u64,
    /// `buckets[i]` holds `(deadline_ms, value)` pairs.
    buckets: Vec<Vec<(u64, T)>>,
    /// The last tick `advance` processed.
    cursor: u64,
    /// Live timers across all buckets.
    len: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel of `slots` buckets at `tick_ms` granularity, starting at
    /// `now_ms`.
    pub fn new(tick_ms: u64, slots: usize, now_ms: u64) -> TimerWheel<T> {
        let tick_ms = tick_ms.max(1);
        TimerWheel {
            tick_ms,
            buckets: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            cursor: now_ms / tick_ms,
            len: 0,
        }
    }

    /// Schedule `value` to fire once `deadline_ms` has passed.
    pub fn schedule(&mut self, deadline_ms: u64, value: T) {
        let tick = deadline_ms / self.tick_ms;
        let idx = (tick as usize) % self.buckets.len();
        self.buckets[idx].push((deadline_ms, value));
        self.len += 1;
    }

    /// Advance the wheel to `now_ms`, returning every timer whose
    /// deadline has passed. Timers in a visited bucket that belong to a
    /// later rotation are retained.
    pub fn advance(&mut self, now_ms: u64) -> Vec<T> {
        let target = now_ms / self.tick_ms;
        let mut fired = Vec::new();
        if target < self.cursor {
            return fired;
        }
        // Visit each bucket at most once per advance, even if the jump
        // spans several rotations.
        let steps = (target - self.cursor).min(self.buckets.len() as u64 - 1);
        let (lo, hi) = (self.cursor + (target - self.cursor) - steps, target);
        for tick in lo..=hi {
            let idx = (tick as usize) % self.buckets.len();
            let bucket = &mut self.buckets[idx];
            let mut kept = Vec::new();
            for (deadline, value) in bucket.drain(..) {
                if deadline <= now_ms {
                    fired.push(value);
                } else {
                    kept.push((deadline, value));
                }
            }
            *bucket = kept;
        }
        self.len -= fired.len();
        self.cursor = target;
        fired
    }

    /// Live timers currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new(10, 8, 0);
        w.schedule(35, "a");
        assert!(w.advance(30).is_empty());
        assert_eq!(w.advance(40), vec!["a"]);
        assert!(w.is_empty());
    }

    #[test]
    fn later_rotation_survives_a_pass() {
        // 8 slots x 10ms = one rotation per 80ms; a 200ms timer hashes
        // into a bucket that is visited twice before it may fire.
        let mut w = TimerWheel::new(10, 8, 0);
        w.schedule(200, "far");
        w.schedule(20, "near");
        assert_eq!(w.advance(80), vec!["near"]);
        assert!(w.advance(160).is_empty());
        assert_eq!(w.advance(240), vec!["far"]);
    }

    #[test]
    fn large_jump_fires_everything_due() {
        let mut w = TimerWheel::new(5, 16, 0);
        for i in 0..50u64 {
            w.schedule(i * 7, i);
        }
        let mut fired = w.advance(1_000);
        fired.sort_unstable();
        assert_eq!(fired, (0..50).collect::<Vec<_>>());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn zero_length_deadline_fires_immediately() {
        let mut w = TimerWheel::new(10, 4, 100);
        w.schedule(100, 1u8);
        assert_eq!(w.advance(100), vec![1]);
    }

    #[test]
    fn time_going_backwards_is_a_noop() {
        let mut w = TimerWheel::new(10, 4, 500);
        w.schedule(510, 1u8);
        assert!(w.advance(400).is_empty());
        assert_eq!(w.len(), 1);
    }
}
