//! A minimal JSON reader for the wire protocol.
//!
//! The vendored `serde_json` stand-in only *writes* JSON, so the daemon
//! carries its own reader. It is deliberately strict and small: UTF-8
//! input, no trailing garbage, recursion depth capped (hostile clients
//! send `[[[[…`), numbers as `f64`, `\uXXXX` escapes supported (surrogate
//! pairs included). Everything the protocol needs and nothing more.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted from the network.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The full field map of an object (the fleet scraper walks every
    /// numeric field of a shard's `stats` reply); `None` on non-objects.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Why parsing failed (offset + reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("bad \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a' + 10),
                b'A'..=b'F' => u32::from(b - b'A' + 10),
                _ => return Err(self.err("bad \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escape `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_requests() {
        let v = parse(
            r#"{"op":"classify","id":"r1","cert":"TUlJ","chain":["QQ=="],"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("classify"));
        assert_eq!(v.get("deadline_ms").unwrap().as_f64(), Some(250.0));
        assert_eq!(v.get("chain").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse("not json").is_err());
        assert!(parse(r#"{"op":"#).is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(10_000);
        assert_eq!(parse(&bomb).unwrap_err().reason, "nesting too deep");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}\u{1f600}"));
        assert_eq!(escape("a\"b\\c\nd"), r#"a\"b\\c\nd"#);
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
    }
}
