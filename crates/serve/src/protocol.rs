//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! request   = "{" fields "}" LF
//! fields    = op [, id] [, cert] [, chain] [, deadline_ms]
//! op        = "validate" | "classify" | "health" | "stats"
//!           | "metrics" | "shutdown" | "chaos_panic"
//!           | "chaos_kill_shard"                   ; cluster front only
//! cert      = base64(DER) | hex(DER)          ; leaf certificate
//! chain     = [ cert, ... ]                   ; presented intermediates
//! ```
//!
//! Responses carry a `code` with HTTP-flavoured semantics so shedding is
//! distinguishable from failure: `200` served, `400` malformed frame,
//! `408` deadline exceeded, `413` frame too large, `500` worker panic,
//! `502` router refusal (no shard for the key / retry budget spent),
//! `503` shed (queue full, breaker open, or draining).
//!
//! `health`, `stats`, and `metrics` are answered inline on the
//! connection thread — they never enter the work queue, so they stay
//! live while the breaker sheds classification load. `metrics` returns
//! the full observability snapshot (DESIGN.md §11): as a JSON object by
//! default, or as a Prometheus text exposition carried in a JSON string
//! when the frame sets `"format":"prometheus"`. `chaos_panic` (fault
//! injection for the supervision tests) is only honoured when the
//! server enables chaos ops.

use crate::json::{self, Value};
use silentcert_validate::Classification;
use silentcert_x509::pem::base64_decode;
use silentcert_x509::Certificate;

/// Response status codes (HTTP-flavoured, carried as JSON numbers).
pub mod code {
    pub const OK: u32 = 200;
    pub const BAD_REQUEST: u32 = 400;
    pub const DEADLINE: u32 = 408;
    pub const TOO_LARGE: u32 = 413;
    pub const PANIC: u32 = 500;
    /// Router-level refusal: no shard available for the key, or the
    /// per-client retry budget is exhausted (cluster front only; a
    /// single shard never emits this).
    pub const UNAVAILABLE: u32 = 502;
    pub const SHED: u32 = 503;
}

/// The operations a frame can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Validate,
    Classify,
    Health,
    Stats,
    /// Full metrics snapshot (JSON or Prometheus exposition).
    Metrics,
    Shutdown,
    /// Test-only: makes the executing worker panic (supervisor drill).
    ChaosPanic,
    /// Cluster-only: asks the router's supervisor to SIGKILL a shard
    /// (failover drill). A plain shard answers `400` — only the cluster
    /// front honours it, and only with chaos ops enabled.
    ChaosKillShard,
}

impl Op {
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Validate => "validate",
            Op::Classify => "classify",
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
            Op::ChaosPanic => "chaos_panic",
            Op::ChaosKillShard => "chaos_kill_shard",
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    pub op: Op,
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: String,
    /// Leaf certificate DER (for `validate` / `classify`).
    pub der: Vec<u8>,
    /// Presented chain, already parsed. Unparseable chain entries are a
    /// `400`: the chain is transport, not data.
    pub chain: Vec<Certificate>,
    /// Client-requested deadline override (capped by the server).
    pub deadline_ms: Option<u64>,
    /// Rendering requested for `metrics` (`"prometheus"` or default JSON).
    pub format: Option<String>,
    /// Target shard for `chaos_kill_shard` (router picks one if absent).
    pub shard: Option<u32>,
}

/// Decode a certificate field: base64 DER (the native form) or hex.
fn decode_cert_field(s: &str) -> Result<Vec<u8>, &'static str> {
    let looks_hex =
        s.len().is_multiple_of(2) && !s.is_empty() && s.bytes().all(|b| b.is_ascii_hexdigit());
    if looks_hex {
        let mut out = Vec::with_capacity(s.len() / 2);
        let nibble = |b: u8| match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => unreachable!(),
        };
        let bytes = s.as_bytes();
        for i in (0..bytes.len()).step_by(2) {
            out.push((nibble(bytes[i]) << 4) | nibble(bytes[i + 1]));
        }
        return Ok(out);
    }
    base64_decode(s).map_err(|_| "cert field is neither hex nor base64")
}

/// Parse one frame (without its trailing newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = match v.get("op").and_then(Value::as_str) {
        Some("validate") => Op::Validate,
        Some("classify") => Op::Classify,
        Some("health") => Op::Health,
        Some("stats") => Op::Stats,
        Some("metrics") => Op::Metrics,
        Some("shutdown") => Op::Shutdown,
        Some("chaos_panic") => Op::ChaosPanic,
        Some("chaos_kill_shard") => Op::ChaosKillShard,
        Some(other) => return Err(format!("unknown op '{}'", json::escape(other))),
        None => return Err("missing 'op'".to_string()),
    };
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let deadline_ms = v.get("deadline_ms").and_then(Value::as_f64).map(|f| {
        if f.is_finite() && f >= 0.0 {
            f as u64
        } else {
            0
        }
    });
    let mut der = Vec::new();
    let mut chain = Vec::new();
    if matches!(op, Op::Validate | Op::Classify) {
        let cert = v
            .get("cert")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("op '{}' requires 'cert'", op.as_str()))?;
        der = decode_cert_field(cert).map_err(str::to_string)?;
        if let Some(entries) = v.get("chain").and_then(Value::as_array) {
            for (i, entry) in entries.iter().enumerate() {
                let s = entry
                    .as_str()
                    .ok_or_else(|| format!("chain[{i}] is not a string"))?;
                let der = decode_cert_field(s).map_err(str::to_string)?;
                let cert = Certificate::from_der(&der).map_err(|e| format!("chain[{i}]: {e}"))?;
                chain.push(cert);
            }
        }
    }
    let format = v.get("format").and_then(Value::as_str).map(str::to_string);
    let shard = v
        .get("shard")
        .and_then(Value::as_f64)
        .filter(|f| f.is_finite() && *f >= 0.0)
        .map(|f| f as u32);
    Ok(Request {
        op,
        id,
        der,
        chain,
        deadline_ms,
        format,
        shard,
    })
}

/// Render one response line (no trailing newline).
pub fn response_line(id: &str, code: u32, fields: &[(&str, String)]) -> String {
    let mut out = format!("{{\"id\":\"{}\",\"code\":{code}", json::escape(id));
    for (k, v) in fields {
        out.push(',');
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A JSON string field value.
pub fn js(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

/// The `result` fields for a classification outcome. The `result` string
/// is the canonical `Display` form — the same bytes the journal records,
/// so replay comparison is byte-exact.
pub fn classification_fields(op: Op, outcome: &Classification) -> Vec<(&'static str, String)> {
    let mut fields = vec![("result", js(&outcome.to_string()))];
    match outcome {
        Classification::Valid {
            chain_len,
            transvalid,
        } => {
            fields.push(("valid", "true".to_string()));
            if op == Op::Validate {
                fields.push(("chain_len", chain_len.to_string()));
                fields.push(("transvalid", transvalid.to_string()));
            }
        }
        Classification::Invalid(reason) => {
            fields.push(("valid", "false".to_string()));
            if op == Op::Classify {
                fields.push(("reason", js(&reason.to_string())));
            }
        }
    }
    fields
}

/// Shorthand for an error response.
pub fn error_line(id: &str, code: u32, error: &str) -> String {
    response_line(id, code, &[("error", js(error))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_base64_and_hex_certs() {
        let r = parse_request(r#"{"op":"classify","id":"a","cert":"3q2+7w=="}"#).unwrap();
        assert_eq!(r.der, vec![0xde, 0xad, 0xbe, 0xef]);
        let r = parse_request(r#"{"op":"validate","cert":"deadbeef","deadline_ms":50}"#).unwrap();
        assert_eq!(r.der, vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(r.deadline_ms, Some(50));
        assert_eq!(r.id, "");
    }

    #[test]
    fn metrics_op_parses_with_optional_format() {
        let r = parse_request(r#"{"op":"metrics","id":"m"}"#).unwrap();
        assert_eq!(r.op, Op::Metrics);
        assert_eq!(r.format, None);
        let r = parse_request(r#"{"op":"metrics","format":"prometheus"}"#).unwrap();
        assert_eq!(r.format.as_deref(), Some("prometheus"));
    }

    #[test]
    fn chaos_kill_shard_parses_optional_target() {
        let r = parse_request(r#"{"op":"chaos_kill_shard","id":"k"}"#).unwrap();
        assert_eq!(r.op, Op::ChaosKillShard);
        assert_eq!(r.shard, None);
        let r = parse_request(r#"{"op":"chaos_kill_shard","shard":2}"#).unwrap();
        assert_eq!(r.shard, Some(2));
    }

    #[test]
    fn health_needs_no_cert() {
        assert!(parse_request(r#"{"op":"health"}"#).is_ok());
        assert!(parse_request(r#"{"op":"classify"}"#).is_err());
        assert!(parse_request(r#"{"op":"reboot"}"#).is_err());
        assert!(parse_request("garbage").is_err());
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let line = error_line("x\"y", code::SHED, "queue full");
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("code").unwrap().as_f64(), Some(503.0));
        assert_eq!(v.get("id").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("error").unwrap().as_str(), Some("queue full"));
    }

    #[test]
    fn classification_fields_follow_op() {
        let valid = Classification::Valid {
            chain_len: 3,
            transvalid: true,
        };
        let f = classification_fields(Op::Validate, &valid);
        assert!(f.iter().any(|(k, _)| *k == "chain_len"));
        let invalid = Classification::Invalid(silentcert_validate::InvalidityReason::SelfSigned);
        let f = classification_fields(Op::Classify, &invalid);
        assert!(f
            .iter()
            .any(|(k, v)| *k == "reason" && v.contains("self-signed")));
    }
}
