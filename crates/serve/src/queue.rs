//! A bounded MPMC work queue with explicit admission control.
//!
//! The server's one defence against unbounded memory growth under
//! overload: producers use [`BoundedQueue::try_push`], which **fails
//! immediately** when the queue is at capacity instead of blocking or
//! growing — the connection layer turns that failure into a `503`-style
//! shed response. Consumers block on [`BoundedQueue::pop`] until an item
//! arrives or the queue is closed and empty, which is how graceful drain
//! terminates the worker pool: close the queue, let the workers finish
//! whatever is left, and they exit on their own.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] rejected an item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for the caller
    /// to shed.
    Full(T),
    /// The queue was closed by drain; no further work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark, for the stats endpoint.
    peak: usize,
}

/// Fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                peak: 0,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Non-blocking admission: enqueue `item` unless the queue is full or
    /// closed. Never waits, never grows past capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return Err(PushError::Closed(item));
        }
        if q.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        q.items.push_back(item);
        q.peak = q.peak.max(q.items.len());
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking take: waits until an item is available or the queue is
    /// closed *and* empty (drain complete), returning `None` in the
    /// latter case.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap();
        }
    }

    /// Close the queue: pending items remain poppable, new pushes fail,
    /// and blocked consumers wake to observe the drain.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth ever observed — by construction `<= capacity`.
    pub fn peak(&self) -> usize {
        self.inner.lock().unwrap().peak
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn close_drains_then_releases_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed(11)));
        assert_eq!(q.pop(), Some(10)); // pending work still drains
        assert_eq!(q.pop(), None); // then consumers are released
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }
}
