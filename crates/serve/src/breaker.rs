//! A three-state circuit breaker over the classification path.
//!
//! ```text
//!            error-rate or slow-rate SLO breached
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │
//!     │ every probe succeeded            cooldown elapsed
//!     │                                               ▼
//!     └─────────────────────────────────────────── HalfOpen
//!                  any probe failed ──▶ back to Open
//! ```
//!
//! While **open**, classification work is shed at admission (`503`)
//! without touching the queue or the workers — only `health` and `stats`
//! keep being served, so operators can watch the breaker recover. After
//! [`BreakerConfig::open_cooldown_ms`] the breaker becomes **half-open**
//! and admits exactly [`BreakerConfig::half_open_probes`] live probes;
//! one failed probe re-opens it (with a fresh cooldown), a full set of
//! successes closes it and resets the window.
//!
//! All time comes in as caller-supplied milliseconds, so the state
//! machine runs identically under the real clock and a test-driven
//! [`VirtualClock`](crate::clock::VirtualClock).

/// SLO thresholds and window sizing.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window length (outcomes) the rates are computed over.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip —
    /// prevents one early failure from opening a cold breaker.
    pub min_samples: usize,
    /// Trip when `errors / samples` exceeds this.
    pub max_error_rate: f64,
    /// An outcome slower than this is "slow" regardless of success.
    pub latency_slo_ms: u64,
    /// Trip when `slow / samples` exceeds this.
    pub max_slow_rate: f64,
    /// How long the breaker stays open before probing.
    pub open_cooldown_ms: u64,
    /// Concurrent live probes admitted while half-open.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 128,
            min_samples: 16,
            max_error_rate: 0.5,
            latency_slo_ms: 1_000,
            max_slow_rate: 0.9,
            open_cooldown_ms: 1_000,
            half_open_probes: 3,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve it (closed, or a half-open probe slot was granted).
    Admit,
    /// Shed it without queueing.
    Shed,
}

/// One recorded outcome.
#[derive(Debug, Clone, Copy)]
struct Outcome {
    ok: bool,
    slow: bool,
}

/// The breaker state machine. Callers wrap it in a `Mutex`; every method
/// takes `now_ms` explicitly (virtual-clock compatible).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Ring buffer of the last `config.window` outcomes.
    outcomes: Vec<Outcome>,
    next_slot: usize,
    filled: usize,
    /// When open: the time probing may begin.
    probe_at_ms: u64,
    /// When half-open: probe slots granted and results seen.
    probes_granted: usize,
    probes_succeeded: usize,
    /// Lifetime trip count, for the stats endpoint.
    pub trips: u64,
    /// Lifetime state transitions by destination state, for the
    /// `metrics` endpoint (`to_open == trips`: every trip is a
    /// transition into Open).
    pub transitions_to_open: u64,
    pub transitions_to_half_open: u64,
    pub transitions_to_closed: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        let window = config.window.max(1);
        CircuitBreaker {
            outcomes: Vec::with_capacity(window),
            next_slot: 0,
            filled: 0,
            state: BreakerState::Closed,
            probe_at_ms: 0,
            probes_granted: 0,
            probes_succeeded: 0,
            trips: 0,
            transitions_to_open: 0,
            transitions_to_half_open: 0,
            transitions_to_closed: 0,
            config: BreakerConfig { window, ..config },
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decide whether one classification request may be served at `now_ms`.
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                if now_ms >= self.probe_at_ms {
                    // Cooldown elapsed: this caller becomes the first probe.
                    self.state = BreakerState::HalfOpen;
                    self.transitions_to_half_open += 1;
                    self.probes_granted = 1;
                    self.probes_succeeded = 0;
                    Admission::Admit
                } else {
                    Admission::Shed
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_granted < self.config.half_open_probes {
                    self.probes_granted += 1;
                    Admission::Admit
                } else {
                    Admission::Shed
                }
            }
        }
    }

    /// A previously admitted request never executed (e.g. the bounded
    /// queue rejected it); release its probe slot so half-open cannot
    /// deadlock waiting for results that will never come.
    pub fn cancel(&mut self) {
        if self.state == BreakerState::HalfOpen && self.probes_granted > 0 {
            self.probes_granted -= 1;
        }
    }

    /// Record the outcome of an admitted request.
    pub fn record(&mut self, now_ms: u64, ok: bool, latency_ms: u64) {
        let slow = latency_ms > self.config.latency_slo_ms;
        match self.state {
            BreakerState::Closed => {
                self.push(Outcome { ok, slow });
                if self.tripped() {
                    self.trip(now_ms);
                }
            }
            BreakerState::HalfOpen => {
                if ok && !slow {
                    self.probes_succeeded += 1;
                    if self.probes_succeeded >= self.config.half_open_probes {
                        // Recovered: fresh window so stale failures can't
                        // immediately re-trip.
                        self.state = BreakerState::Closed;
                        self.transitions_to_closed += 1;
                        self.filled = 0;
                        self.next_slot = 0;
                        self.outcomes.clear();
                    }
                } else {
                    self.trip(now_ms);
                }
            }
            // Late results from requests admitted before the trip: the
            // window that tripped already counted the pattern, drop them.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.probe_at_ms = now_ms + self.config.open_cooldown_ms;
        self.trips += 1;
        self.transitions_to_open += 1;
    }

    fn push(&mut self, o: Outcome) {
        if self.outcomes.len() < self.config.window {
            self.outcomes.push(o);
        } else {
            self.outcomes[self.next_slot] = o;
        }
        self.next_slot = (self.next_slot + 1) % self.config.window;
        self.filled = (self.filled + 1).min(self.config.window);
    }

    fn tripped(&self) -> bool {
        if self.filled < self.config.min_samples.max(1) {
            return false;
        }
        let n = self.outcomes.len() as f64;
        let errors = self.outcomes.iter().filter(|o| !o.ok).count() as f64;
        let slow = self.outcomes.iter().filter(|o| o.slow).count() as f64;
        errors / n > self.config.max_error_rate || slow / n > self.config.max_slow_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            max_error_rate: 0.5,
            latency_slo_ms: 100,
            max_slow_rate: 0.9,
            open_cooldown_ms: 500,
            half_open_probes: 2,
        }
    }

    #[test]
    fn trips_on_error_rate_and_sheds_until_cooldown() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..4 {
            assert_eq!(b.admit(0), Admission::Admit);
            b.record(0, false, 1);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert_eq!(b.admit(499), Admission::Shed);
        // Cooldown elapsed: next admission is the first half-open probe.
        assert_eq!(b.admit(500), Admission::Admit);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_limits_probes_then_closes_on_success() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.admit(0);
            b.record(0, false, 1);
        }
        assert_eq!(b.admit(500), Admission::Admit); // probe 1
        assert_eq!(b.admit(500), Admission::Admit); // probe 2
        assert_eq!(b.admit(500), Admission::Shed); // over the probe budget
        b.record(501, true, 1);
        b.record(501, true, 1);
        assert_eq!(b.state(), BreakerState::Closed);
        // The window was reset: old failures cannot re-trip it.
        b.admit(502);
        b.record(502, false, 1);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.admit(0);
            b.record(0, false, 1);
        }
        assert_eq!(b.admit(500), Admission::Admit);
        b.record(510, false, 1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert_eq!(b.admit(1009), Admission::Shed);
        assert_eq!(b.admit(1010), Admission::Admit);
    }

    #[test]
    fn trips_on_latency_slo() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..8 {
            b.admit(0);
            b.record(0, true, 5_000); // successful but way over SLO
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cold_breaker_needs_min_samples() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..3 {
            b.admit(0);
            b.record(0, false, 1);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn transition_counters_track_every_state_change() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.admit(0);
            b.record(0, false, 1);
        }
        // Closed → Open.
        assert_eq!(b.transitions_to_open, 1);
        assert_eq!(b.transitions_to_open, b.trips);
        // Open → HalfOpen after cooldown.
        b.admit(500);
        b.admit(500);
        assert_eq!(b.transitions_to_half_open, 1);
        // HalfOpen → Closed on a full probe set.
        b.record(501, true, 1);
        b.record(501, true, 1);
        assert_eq!(b.transitions_to_closed, 1);
        // Trip again: Open counter keeps pace with trips.
        for _ in 0..4 {
            b.admit(600);
            b.record(600, false, 1);
        }
        assert_eq!(b.transitions_to_open, 2);
        assert_eq!(b.transitions_to_open, b.trips);
    }

    #[test]
    fn cancel_releases_a_probe_slot() {
        let mut b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.admit(0);
            b.record(0, false, 1);
        }
        assert_eq!(b.admit(500), Admission::Admit);
        assert_eq!(b.admit(500), Admission::Admit);
        assert_eq!(b.admit(500), Admission::Shed);
        b.cancel(); // one probe was never executed (queue full)
        assert_eq!(b.admit(500), Admission::Admit);
    }
}
