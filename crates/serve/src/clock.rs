//! Monotonic time for the serving stack.
//!
//! The [`Clock`] abstraction now lives in `silentcert-obs` (the tracer
//! needs it too, and obs sits below every other crate); this module
//! re-exports it unchanged so existing `silentcert_serve::clock::…`
//! paths keep working.

pub use silentcert_obs::clock::{Clock, SystemClock, VirtualClock};
