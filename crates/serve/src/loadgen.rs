//! A load-generating client with transport-level fault injection.
//!
//! Replays a prepared set of request lines against a running daemon at a
//! target aggregate QPS across several connections, optionally mutating a
//! fraction of sends into hostile transport behaviour — the same fault
//! lottery idiom as `silentcert_sim::faults`:
//!
//! * **slow-loris**: write half a frame, stall past the server's read
//!   timeout, expect the connection to be closed on us;
//! * **disconnect**: write half a frame and hang up mid-frame;
//! * **oversize**: send a frame past the server's size cap, expect `413`;
//! * **garbage**: send bytes that are not JSON at all, expect `400`.
//!
//! The report aggregates latency percentiles and per-code counts so the
//! CI smoke job (and `repro loadgen`) can assert on shed rates and clean
//! survival.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silentcert_obs::trace;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Fault-injection rates, each the probability a given send is replaced
/// by that fault (checked in order; at most one fault per send).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientFaultPlan {
    pub slow_loris_rate: f64,
    pub disconnect_rate: f64,
    pub oversize_rate: f64,
    pub garbage_rate: f64,
}

impl ClientFaultPlan {
    /// The transport-chaos preset the CI smoke job uses.
    pub fn chaos() -> ClientFaultPlan {
        ClientFaultPlan {
            slow_loris_rate: 0.02,
            disconnect_rate: 0.03,
            oversize_rate: 0.02,
            garbage_rate: 0.05,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> Option<Fault> {
        let roll: f64 = rng.gen_range(0.0..1.0);
        let mut acc = self.slow_loris_rate;
        if roll < acc {
            return Some(Fault::SlowLoris);
        }
        acc += self.disconnect_rate;
        if roll < acc {
            return Some(Fault::Disconnect);
        }
        acc += self.oversize_rate;
        if roll < acc {
            return Some(Fault::Oversize);
        }
        acc += self.garbage_rate;
        if roll < acc {
            return Some(Fault::Garbage);
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    SlowLoris,
    Disconnect,
    Oversize,
    Garbage,
}

/// Loadgen parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests to send across all connections.
    pub requests: usize,
    /// Aggregate target rate; `0` means as fast as possible.
    pub qps: u64,
    pub faults: ClientFaultPlan,
    pub seed: u64,
    /// How long a slow-loris stall holds the socket.
    pub stall_ms: u64,
    /// Bytes in an oversize frame (should exceed the server cap).
    pub oversize_bytes: usize,
    /// Scrape the daemon's `metrics` verb after the run and fold the
    /// snapshot into [`LoadReport::daemon_metrics`].
    pub scrape_metrics: bool,
    /// Cluster chaos: before sending its request at this index, worker 0
    /// fires a `chaos_kill_shard` frame on a throwaway connection —
    /// SIGKILLing one shard mid-run so failover happens under live load.
    pub kill_shard_at: Option<usize>,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: String::new(),
            connections: 4,
            requests: 1_000,
            qps: 0,
            faults: ClientFaultPlan::default(),
            seed: 0x10adbeef,
            stall_ms: 3_000,
            oversize_bytes: 2 << 20,
            scrape_metrics: true,
            kill_shard_at: None,
        }
    }
}

/// Aggregated outcome of a loadgen run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Well-formed requests that got a response line back.
    pub answered: u64,
    pub code_200: u64,
    pub code_400: u64,
    pub code_408: u64,
    pub code_413: u64,
    pub code_500: u64,
    /// Router-level refusals (cluster front only).
    pub code_502: u64,
    pub code_503: u64,
    /// Responses with any other code, or unparsable response lines.
    pub code_other: u64,
    /// Fault sends, by kind.
    pub faults_slow_loris: u64,
    pub faults_disconnect: u64,
    pub faults_oversize: u64,
    pub faults_garbage: u64,
    /// Sends that failed at the transport level (connect/write/read).
    pub transport_errors: u64,
    /// `chaos_kill_shard` frames acknowledged (200) by the router.
    pub cluster_kills: u64,
    pub elapsed_ms: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    /// The daemon's metrics snapshot (the `metrics` verb's JSON object),
    /// scraped after the run when [`LoadgenOptions::scrape_metrics`] is
    /// set — queue depth, latency quantiles, shed/408/500 counters,
    /// breaker transitions.
    pub daemon_metrics: Option<String>,
}

impl LoadReport {
    /// Requests shed (`503`) as a fraction of answered requests.
    pub fn shed_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.code_503 as f64 / self.answered as f64
        }
    }

    /// Achieved request throughput over the whole run.
    pub fn qps(&self) -> f64 {
        if self.elapsed_ms == 0 {
            0.0
        } else {
            self.answered as f64 * 1_000.0 / self.elapsed_ms as f64
        }
    }

    /// One-line JSON rendering for reports and BENCH.json embedding.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"answered\":{},\"code_200\":{},\"code_400\":{},\"code_408\":{},",
                "\"code_413\":{},\"code_500\":{},\"code_502\":{},\"code_503\":{},\"code_other\":{},",
                "\"faults_slow_loris\":{},\"faults_disconnect\":{},\"faults_oversize\":{},",
                "\"faults_garbage\":{},\"transport_errors\":{},\"cluster_kills\":{},\"elapsed_ms\":{},",
                "\"qps\":{:.1},\"shed_rate\":{:.4},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}"
            ),
            self.answered,
            self.code_200,
            self.code_400,
            self.code_408,
            self.code_413,
            self.code_500,
            self.code_502,
            self.code_503,
            self.code_other,
            self.faults_slow_loris,
            self.faults_disconnect,
            self.faults_oversize,
            self.faults_garbage,
            self.transport_errors,
            self.cluster_kills,
            self.elapsed_ms,
            self.qps(),
            self.shed_rate(),
            self.p50_us,
            self.p99_us,
            self.max_us,
        );
        if let Some(m) = &self.daemon_metrics {
            out.push_str(",\"daemon_metrics\":");
            out.push_str(m);
        }
        out.push('}');
        out
    }

    fn merge(&mut self, other: &LoadReport) {
        self.answered += other.answered;
        self.code_200 += other.code_200;
        self.code_400 += other.code_400;
        self.code_408 += other.code_408;
        self.code_413 += other.code_413;
        self.code_500 += other.code_500;
        self.code_502 += other.code_502;
        self.code_503 += other.code_503;
        self.code_other += other.code_other;
        self.faults_slow_loris += other.faults_slow_loris;
        self.faults_disconnect += other.faults_disconnect;
        self.faults_oversize += other.faults_oversize;
        self.faults_garbage += other.faults_garbage;
        self.transport_errors += other.transport_errors;
        self.cluster_kills += other.cluster_kills;
    }
}

/// Scrape the daemon's `metrics` verb: returns the raw JSON object of
/// metric series, or `None` on any transport or parse failure.
pub fn fetch_metrics(addr: &str) -> Option<String> {
    let mut c = connect(addr).ok()?;
    c.stream
        .write_all(b"{\"op\":\"metrics\",\"id\":\"loadgen\"}\n")
        .ok()?;
    let mut resp = String::new();
    c.reader.read_line(&mut resp).ok()?;
    let resp = resp.trim_end();
    if response_code(resp) != Some(200) {
        return None;
    }
    // `metrics` is the last field of the response line, so its object
    // runs to the response's closing brace.
    let idx = resp.find("\"metrics\":")?;
    let obj = &resp[idx + "\"metrics\":".len()..resp.len() - 1];
    crate::json::parse(obj).ok()?;
    Some(obj.to_string())
}

/// Extract `"code":N` from a response line without a full JSON parse
/// (the loadgen hot loop should stay cheap).
fn response_code(line: &str) -> Option<u32> {
    let idx = line.find("\"code\":")?;
    let rest = &line[idx + 7..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: &str) -> std::io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(Conn { stream, reader })
}

/// One worker's slice of the run. Returns its partial report plus raw
/// latency samples in microseconds.
#[allow(clippy::too_many_lines)]
fn client_thread(
    opts: &LoadgenOptions,
    requests: &[String],
    worker: usize,
    count: usize,
    pace_us: u64,
) -> (LoadReport, Vec<u64>) {
    // Deterministic thread labels so flushed traces sort identically
    // regardless of how the OS names loadgen threads.
    trace::set_thread_label(&format!("client-{worker}"));
    let tracer = trace::tracer();
    let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(worker as u64 * 0x9e37));
    let mut report = LoadReport::default();
    let mut latencies = Vec::with_capacity(count);
    let mut conn: Option<Conn> = None;
    let started = Instant::now();

    for i in 0..count {
        // Pace to the aggregate QPS target by scheduling each send at its
        // ideal offset from the start of the run.
        if pace_us > 0 {
            let due = Duration::from_micros(pace_us * i as u64);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        // Mid-run failover chaos: worker 0 asks the router's supervisor
        // to SIGKILL a shard, then keeps loading — the run itself is the
        // failover window the cluster must absorb.
        if worker == 0 && opts.kill_shard_at == Some(i) {
            if let Ok(mut c) = connect(&opts.addr) {
                let sent = c
                    .stream
                    .write_all(b"{\"op\":\"chaos_kill_shard\",\"id\":\"chaos\"}\n");
                let mut resp = String::new();
                if sent.is_ok() && c.reader.read_line(&mut resp).is_ok() {
                    if response_code(&resp) == Some(200) {
                        report.cluster_kills += 1;
                    } else if !resp.is_empty() {
                        report.code_other += 1;
                    }
                }
            }
        }
        let line = &requests[(worker + i * opts.connections.max(1)) % requests.len()];
        let fault = opts.faults.draw(&mut rng);

        // Faults get their own throwaway connection so the main request
        // stream keeps its connection healthy.
        match fault {
            Some(Fault::SlowLoris) => {
                report.faults_slow_loris += 1;
                if let Ok(mut c) = connect(&opts.addr) {
                    let half = line.len() / 2;
                    let _ = c.stream.write_all(line.as_bytes()[..half].as_ref());
                    std::thread::sleep(Duration::from_millis(opts.stall_ms));
                    // The server should have hung up on us by now; a
                    // write or read failing is the expected outcome.
                    drop(c);
                }
                continue;
            }
            Some(Fault::Disconnect) => {
                report.faults_disconnect += 1;
                if let Ok(mut c) = connect(&opts.addr) {
                    let half = line.len() / 2;
                    let _ = c.stream.write_all(line.as_bytes()[..half].as_ref());
                    drop(c); // hang up mid-frame
                }
                continue;
            }
            Some(Fault::Oversize) => {
                report.faults_oversize += 1;
                if let Ok(mut c) = connect(&opts.addr) {
                    let blob = vec![b'x'; opts.oversize_bytes];
                    let _ = c.stream.write_all(&blob);
                    let _ = c.stream.write_all(b"\n");
                    let mut resp = String::new();
                    if c.reader.read_line(&mut resp).is_ok() {
                        if response_code(&resp) == Some(413) {
                            report.code_413 += 1;
                        } else if !resp.is_empty() {
                            report.code_other += 1;
                        }
                    }
                }
                continue;
            }
            Some(Fault::Garbage) => {
                report.faults_garbage += 1;
                if let Ok(mut c) = connect(&opts.addr) {
                    let _ = c.stream.write_all(b"\x01\x02{{{ not json\n");
                    let mut resp = String::new();
                    if c.reader.read_line(&mut resp).is_ok() {
                        if response_code(&resp) == Some(400) {
                            report.code_400 += 1;
                        } else if !resp.is_empty() {
                            report.code_other += 1;
                        }
                    }
                }
                continue;
            }
            None => {}
        }

        // Normal request on the persistent connection.
        if conn.is_none() {
            conn = connect(&opts.addr).ok();
        }
        let Some(c) = conn.as_mut() else {
            report.transport_errors += 1;
            continue;
        };
        let _request_span = tracer.span("loadgen.request");
        let sent = Instant::now();
        let wrote = c
            .stream
            .write_all(line.as_bytes())
            .and_then(|()| c.stream.write_all(b"\n"));
        if wrote.is_err() {
            report.transport_errors += 1;
            conn = None;
            continue;
        }
        let mut resp = String::new();
        match c.reader.read_line(&mut resp) {
            Ok(n) if n > 0 => {
                let lat = sent.elapsed().as_micros() as u64;
                latencies.push(lat);
                report.answered += 1;
                match response_code(&resp) {
                    Some(200) => report.code_200 += 1,
                    Some(400) => report.code_400 += 1,
                    Some(408) => report.code_408 += 1,
                    Some(413) => report.code_413 += 1,
                    Some(500) => report.code_500 += 1,
                    Some(502) => report.code_502 += 1,
                    Some(503) => report.code_503 += 1,
                    _ => report.code_other += 1,
                }
            }
            _ => {
                report.transport_errors += 1;
                conn = None;
            }
        }
    }
    (report, latencies)
}

/// Run the load generator against `opts.addr`, cycling through
/// `requests` (pre-rendered request lines, newline-free).
pub fn run(opts: &LoadgenOptions, requests: &[String]) -> LoadReport {
    assert!(!requests.is_empty(), "loadgen needs at least one request");
    let connections = opts.connections.max(1);
    let per_worker = opts.requests / connections;
    let remainder = opts.requests % connections;
    // Each worker paces itself to its share of the aggregate QPS.
    let pace_us = if opts.qps == 0 {
        0
    } else {
        1_000_000 * connections as u64 / opts.qps.max(1)
    };

    let started = Instant::now();
    let mut partials = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let count = per_worker + usize::from(worker < remainder);
                scope.spawn(move || client_thread(opts, requests, worker, count, pace_us))
            })
            .collect();
        for h in handles {
            if let Ok(partial) = h.join() {
                partials.push(partial);
            }
        }
    });

    let mut report = LoadReport::default();
    let mut latencies = Vec::new();
    for (partial, lat) in &partials {
        report.merge(partial);
        latencies.extend_from_slice(lat);
    }
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx.min(latencies.len() - 1)]
        }
    };
    report.p50_us = pct(0.50);
    report.p99_us = pct(0.99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    if opts.scrape_metrics {
        report.daemon_metrics = fetch_metrics(&opts.addr);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_lottery_respects_rates() {
        let plan = ClientFaultPlan {
            slow_loris_rate: 0.0,
            disconnect_rate: 0.0,
            oversize_rate: 0.0,
            garbage_rate: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(plan.draw(&mut rng), Some(Fault::Garbage));
        }
        let none = ClientFaultPlan::default();
        for _ in 0..100 {
            assert_eq!(none.draw(&mut rng), None);
        }
    }

    #[test]
    fn response_code_extraction() {
        assert_eq!(
            response_code(r#"{"id":"a","code":503,"error":"x"}"#),
            Some(503)
        );
        assert_eq!(response_code(r#"{"code":200}"#), Some(200));
        assert_eq!(response_code("garbage"), None);
    }

    #[test]
    fn report_json_is_valid() {
        let r = LoadReport {
            answered: 10,
            code_200: 8,
            code_503: 2,
            elapsed_ms: 100,
            ..LoadReport::default()
        };
        let v = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("answered").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("shed_rate").unwrap().as_f64(), Some(0.2));
    }
}
