//! `silentcert-serve`: a supervised certificate-validation daemon.
//!
//! Turns the corpus-trained validator into an online service with the
//! operational properties a measurement pipeline's backend needs:
//! bounded queueing with explicit admission control, per-request
//! deadlines on a timer wheel, a three-state circuit breaker shedding
//! classification load when SLOs are breached, supervised workers that
//! survive panics, and a graceful drain that flushes a crash-safe,
//! replayable request journal. See `DESIGN.md` §10 for the architecture.
//!
//! Observability (DESIGN.md §11): every counter lives in a per-server
//! `silentcert_obs` registry — the legacy `stats` verb and the
//! `metrics` verb (JSON snapshot or Prometheus text exposition) read
//! the same cells. Request handling emits `serve.*` spans through the
//! global tracer.

pub mod breaker;
pub mod clock;
pub mod journal;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod timer;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use journal::{read_journal, replay, Journal, JournalReadout, ReplayReport, PANIC_RESULT};
pub use loadgen::{fetch_metrics, ClientFaultPlan, LoadReport, LoadgenOptions};
pub use queue::{BoundedQueue, PushError};
pub use server::{start, DrainSummary, ServeConfig, ServerHandle};
pub use timer::TimerWheel;
