//! Drain-on-signal: SIGTERM/SIGINT start a graceful drain.
//!
//! The cluster supervisor (and any init system) stops a shard with a
//! signal, not a `shutdown` frame — the shard must treat that as "drain
//! and exit cleanly", never as an abrupt death. The handler itself only
//! flips an `AtomicBool` (the async-signal-safe subset); a watcher
//! thread polls the flag and triggers the daemon's normal drain path,
//! so signal shutdown and `shutdown`-frame shutdown share every drain
//! invariant (backlog finishes, journal flushes, force-shed deadline).
//!
//! The FFI is a single `signal(2)` declaration rather than a libc crate
//! dependency: the build environment is offline and the workspace is
//! std-only, and `signal` with a `SIG_DFL`-style handler address is
//! available on every Unix libc. On non-Unix targets installation is a
//! no-op and the watcher only ever observes `false`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; read by the watcher thread.
static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)` —
        /// the handler travels as a raw function address.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one relaxed-free store.
    DRAIN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Install the SIGTERM/SIGINT handlers. Idempotent; no-op off Unix.
pub fn install_drain_handler() {
    #[cfg(unix)]
    unsafe {
        ffi::signal(ffi::SIGTERM, on_signal as *const () as usize);
        ffi::signal(ffi::SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a drain-requesting signal has arrived.
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::SeqCst)
}

/// Spawn the watcher: when a signal arrives, run `drain` (typically
/// [`crate::ServerHandle::drainer`]'s closure) and exit. The thread also
/// exits once `done` reports true so it never outlives the daemon.
pub fn watch(drain: impl Fn() + Send + 'static, done: impl Fn() -> bool + Send + 'static) {
    let _ = std::thread::Builder::new()
        .name("serve-signal-watch".to_string())
        .spawn(move || loop {
            if drain_requested() {
                drain();
                return;
            }
            if done() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watcher_fires_drain_once_flag_is_set() {
        install_drain_handler();
        let fired = std::sync::Arc::new(AtomicBool::new(false));
        let fired2 = std::sync::Arc::clone(&fired);
        watch(move || fired2.store(true, Ordering::SeqCst), || false);
        // Simulate signal delivery by poking the handler directly (a
        // real kill would race other tests in this binary).
        #[cfg(unix)]
        on_signal(ffi::SIGTERM);
        #[cfg(not(unix))]
        DRAIN_REQUESTED.store(true, Ordering::SeqCst);
        for _ in 0..100 {
            if fired.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("watcher never fired the drain");
    }
}
