//! The supervised validation daemon.
//!
//! Thread layout (everything shares one `Arc<Shared>`):
//!
//! ```text
//!   accept thread ──▶ connection threads ──try_push──▶ BoundedQueue
//!        │                   │   ▲                        │
//!        │             admission: │ response slots        ▼
//!        │             breaker +  │ (408 via wheel)   worker pool
//!        │             draining   │                  (panic ⇒ death)
//!        │                   supervisor thread ◀── restarts with
//!        │                (wheel ticks, journal       jittered backoff
//!        └── draining ──▶  flushes, drain conduct)
//! ```
//!
//! Robustness properties the tests pin down:
//!
//! * **Bounded memory**: classification work only enters through
//!   [`BoundedQueue::try_push`]; a full queue is an immediate `503`.
//! * **Deadlines**: each admitted request is scheduled on the timer
//!   wheel; expiry answers the client `408` and marks the job dead so a
//!   worker never wastes time on it.
//! * **Circuit breaking**: error-rate / latency-SLO breaches shed
//!   classification load at admission while `health` and `stats` stay
//!   live (they never touch the queue).
//! * **Supervision**: a worker panic is captured (same discipline as
//!   `silentcert_core::par`), answered `500`, and the dead worker is
//!   restarted by the supervisor under jittered exponential backoff —
//!   the process never dies with it.
//! * **Graceful drain**: shutdown stops admission, lets the backlog
//!   finish under a drain deadline, sheds whatever remains, and flushes
//!   the request journal atomically.

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::clock::{Clock, SystemClock};
use crate::journal::Journal;
use crate::protocol::{self, code, Op, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::timer::TimerWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silentcert_obs::metrics::{self, Counter, Histogram, Registry, Snapshot};
use silentcert_obs::trace;
use silentcert_validate::Validator;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything tunable about the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing classifications.
    pub workers: usize,
    /// Work-queue capacity; beyond it requests are shed, never queued.
    pub queue_capacity: usize,
    /// Frames longer than this are answered `413` and the connection
    /// closed.
    pub max_frame_bytes: usize,
    /// Read timeout per socket wait: a stalled *partial* frame
    /// (slow-loris) closes the connection; an idle gap between frames
    /// does not.
    pub read_timeout_ms: u64,
    /// Default (and maximum) per-request deadline.
    pub deadline_ms: u64,
    /// How long a drain may take before remaining work is shed.
    pub drain_deadline_ms: u64,
    /// Circuit-breaker SLOs.
    pub breaker: BreakerConfig,
    /// Where to persist the request journal (`None` disables it).
    pub journal_path: Option<PathBuf>,
    /// Honour `chaos_panic` frames (supervision drills / loadgen chaos).
    pub enable_chaos_ops: bool,
    /// Seed for restart-backoff jitter.
    pub seed: u64,
    /// Base backoff before restarting a dead worker (doubles per
    /// consecutive death, jittered, capped at 500 ms).
    pub restart_backoff_ms: u64,
    /// This daemon's identity within a cluster (0 when standalone);
    /// labels the health line and the metrics snapshot so a fleet
    /// scrape can tell shards apart.
    pub shard_id: u32,
    /// Write every journal record through to the file before the
    /// response is sent (see [`Journal::write_through`]): a SIGKILL
    /// can then never produce a client-visible success without a
    /// durable journal record. Costs one file write per request.
    pub journal_write_through: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 256,
            max_frame_bytes: 1 << 20,
            read_timeout_ms: 2_000,
            deadline_ms: 1_000,
            drain_deadline_ms: 5_000,
            breaker: BreakerConfig::default(),
            journal_path: None,
            enable_chaos_ops: false,
            seed: 0x5e12e,
            restart_backoff_ms: 10,
            shard_id: 0,
            journal_write_through: false,
        }
    }
}

/// Monotonic counters exposed by `stats` and `metrics`. Every handle is
/// a registration in the server's private [`Registry`] — the registry is
/// the single store, so the legacy `stats` verb and the `metrics` verb
/// read the same cells and can never disagree.
#[derive(Debug)]
pub struct Stats {
    pub connections: Arc<Counter>,
    pub frames: Arc<Counter>,
    pub accepted: Arc<Counter>,
    pub served_ok: Arc<Counter>,
    pub bad_frames: Arc<Counter>,
    pub oversize_frames: Arc<Counter>,
    pub slow_loris_closed: Arc<Counter>,
    pub shed_queue_full: Arc<Counter>,
    pub shed_breaker: Arc<Counter>,
    pub shed_draining: Arc<Counter>,
    pub deadline_expired: Arc<Counter>,
    /// Jobs a worker discarded because their deadline had already fired.
    pub deadline_skipped: Arc<Counter>,
    pub worker_panics: Arc<Counter>,
    pub worker_restarts: Arc<Counter>,
    /// End-to-end latency of answered classification requests
    /// (enqueue → response fill), including 408/500 outcomes.
    pub request_latency_ms: Arc<Histogram>,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait_ms: Arc<Histogram>,
}

impl Stats {
    fn register(registry: &Registry) -> Stats {
        let shed =
            |reason| registry.counter_with("silentcert_serve_shed_total", &[("reason", reason)]);
        Stats {
            connections: registry.counter("silentcert_serve_connections_total"),
            frames: registry.counter("silentcert_serve_frames_total"),
            accepted: registry.counter("silentcert_serve_accepted_total"),
            served_ok: registry.counter("silentcert_serve_served_ok_total"),
            bad_frames: registry.counter("silentcert_serve_bad_frames_total"),
            oversize_frames: registry.counter("silentcert_serve_oversize_frames_total"),
            slow_loris_closed: registry.counter("silentcert_serve_slow_loris_closed_total"),
            shed_queue_full: shed("queue_full"),
            shed_breaker: shed("breaker"),
            shed_draining: shed("draining"),
            deadline_expired: registry.counter("silentcert_serve_deadline_expired_total"),
            deadline_skipped: registry.counter("silentcert_serve_deadline_skipped_total"),
            worker_panics: registry.counter("silentcert_serve_worker_panics_total"),
            worker_restarts: registry.counter("silentcert_serve_worker_restarts_total"),
            request_latency_ms: registry.histogram("silentcert_serve_request_latency_ms"),
            queue_wait_ms: registry.histogram("silentcert_serve_queue_wait_ms"),
        }
    }
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats.$field.inc()
    };
}

/// One request's rendezvous point between the connection thread, the
/// worker, and the timer wheel. First `fill` wins; later fills are
/// no-ops, which is what makes the deadline/completion race benign.
struct ResponseSlot {
    response: Mutex<Option<String>>,
    filled: Condvar,
}

impl ResponseSlot {
    fn new() -> ResponseSlot {
        ResponseSlot {
            response: Mutex::new(None),
            filled: Condvar::new(),
        }
    }

    /// Install `line` if the slot is still empty; `true` if we won.
    fn fill(&self, line: String) -> bool {
        let mut r = self.response.lock().unwrap();
        if r.is_some() {
            return false;
        }
        *r = Some(line);
        drop(r);
        self.filled.notify_all();
        true
    }

    fn is_filled(&self) -> bool {
        self.response.lock().unwrap().is_some()
    }

    /// Wait up to `timeout` for a response.
    fn wait(&self, timeout: Duration) -> Option<String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut r = self.response.lock().unwrap();
        loop {
            if let Some(line) = r.as_ref() {
                return Some(line.clone());
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self.filled.wait_timeout(r, left).unwrap();
            r = guard;
        }
    }
}

/// A queued classification job.
struct Job {
    op: Op,
    id: String,
    der: Vec<u8>,
    chain: Vec<silentcert_x509::Certificate>,
    enqueued_ms: u64,
    slot: Arc<ResponseSlot>,
}

/// A deadline scheduled on the wheel.
struct WheelEntry {
    slot: Arc<ResponseSlot>,
    line: String,
    enqueued_ms: u64,
}

struct Shared {
    config: ServeConfig,
    validator: Arc<Validator>,
    clock: Arc<dyn Clock>,
    queue: BoundedQueue<Job>,
    breaker: Mutex<CircuitBreaker>,
    wheel: Mutex<TimerWheel<WheelEntry>>,
    journal: Option<Journal>,
    /// This server instance's metric store (instances are independent,
    /// so parallel tests never share counters).
    registry: Registry,
    stats: Stats,
    draining: AtomicBool,
    workers_alive: AtomicUsize,
}

impl Shared {
    fn now(&self) -> u64 {
        self.clock.now_ms()
    }

    fn record(&self, ok: bool, latency_ms: u64) {
        let now = self.now();
        self.breaker.lock().unwrap().record(now, ok, latency_ms);
    }

    fn health_line(&self, id: &str) -> String {
        let state = self.breaker.lock().unwrap().state();
        protocol::response_line(
            id,
            code::OK,
            &[
                ("ok", "true".to_string()),
                ("shard", self.config.shard_id.to_string()),
                ("breaker", protocol::js(state.as_str())),
                ("draining", self.draining.load(Ordering::SeqCst).to_string()),
                (
                    "workers_alive",
                    self.workers_alive.load(Ordering::SeqCst).to_string(),
                ),
            ],
        )
    }

    fn stats_line(&self, id: &str) -> String {
        let b = self.breaker.lock().unwrap();
        let s = &self.stats;
        let fields = vec![
            ("connections", s.connections.value().to_string()),
            ("frames", s.frames.value().to_string()),
            ("accepted", s.accepted.value().to_string()),
            ("served_ok", s.served_ok.value().to_string()),
            ("bad_frames", s.bad_frames.value().to_string()),
            ("oversize_frames", s.oversize_frames.value().to_string()),
            ("slow_loris_closed", s.slow_loris_closed.value().to_string()),
            ("shed_queue_full", s.shed_queue_full.value().to_string()),
            ("shed_breaker", s.shed_breaker.value().to_string()),
            ("shed_draining", s.shed_draining.value().to_string()),
            ("deadline_expired", s.deadline_expired.value().to_string()),
            ("deadline_skipped", s.deadline_skipped.value().to_string()),
            ("worker_panics", s.worker_panics.value().to_string()),
            ("worker_restarts", s.worker_restarts.value().to_string()),
            ("queue_depth", self.queue.len().to_string()),
            ("queue_peak", self.queue.peak().to_string()),
            ("queue_capacity", self.queue.capacity().to_string()),
            ("breaker", protocol::js(b.state().as_str())),
            ("breaker_trips", b.trips.to_string()),
            (
                "workers_alive",
                self.workers_alive.load(Ordering::SeqCst).to_string(),
            ),
            (
                "journal_entries",
                self.journal.as_ref().map_or(0, Journal::len).to_string(),
            ),
            ("draining", self.draining.load(Ordering::SeqCst).to_string()),
        ];
        protocol::response_line(id, code::OK, &fields)
    }

    /// The full observability snapshot: every registry series plus the
    /// state read at snapshot time (queue depth, breaker state and
    /// transition counts, worker liveness), merged with the
    /// process-global registry so library-crate series (validator memo,
    /// modpow timing) ride along.
    fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        snap.set_gauge("silentcert_serve_shard_id", i64::from(self.config.shard_id));
        snap.set_gauge("silentcert_serve_queue_depth", self.queue.len() as i64);
        snap.set_gauge("silentcert_serve_queue_peak", self.queue.peak() as i64);
        snap.set_gauge(
            "silentcert_serve_queue_capacity",
            self.queue.capacity() as i64,
        );
        snap.set_gauge(
            "silentcert_serve_workers_alive",
            self.workers_alive.load(Ordering::SeqCst) as i64,
        );
        snap.set_gauge(
            "silentcert_serve_draining",
            i64::from(self.draining.load(Ordering::SeqCst)),
        );
        snap.set_gauge(
            "silentcert_serve_journal_entries",
            self.journal.as_ref().map_or(0, Journal::len) as i64,
        );
        snap.set_gauge(
            "silentcert_validate_memo_len",
            self.validator.memo_len() as i64,
        );
        snap.set_counter(
            "silentcert_validate_memo_evictions_total",
            self.validator.memo_evictions(),
        );
        snap.set_counter(
            "silentcert_obs_trace_dropped_total",
            silentcert_obs::trace::tracer().dropped(),
        );
        {
            let b = self.breaker.lock().unwrap();
            // Encoded as 0 = closed, 1 = open, 2 = half-open.
            let state = match b.state() {
                crate::breaker::BreakerState::Closed => 0,
                crate::breaker::BreakerState::Open => 1,
                crate::breaker::BreakerState::HalfOpen => 2,
            };
            snap.set_gauge("silentcert_serve_breaker_state", state);
            snap.set_counter(
                "silentcert_serve_breaker_transitions_total{to=\"open\"}",
                b.transitions_to_open,
            );
            snap.set_counter(
                "silentcert_serve_breaker_transitions_total{to=\"half_open\"}",
                b.transitions_to_half_open,
            );
            snap.set_counter(
                "silentcert_serve_breaker_transitions_total{to=\"closed\"}",
                b.transitions_to_closed,
            );
        }
        snap.merge(&metrics::global().snapshot());
        snap
    }

    fn metrics_line(&self, id: &str, format: Option<&str>) -> String {
        let snap = self.metrics_snapshot();
        match format {
            Some("prometheus") => protocol::response_line(
                id,
                code::OK,
                &[
                    ("format", protocol::js("prometheus")),
                    ("exposition", protocol::js(&snap.render_prometheus())),
                ],
            ),
            _ => protocol::response_line(id, code::OK, &[("metrics", snap.render_json())]),
        }
    }
}

/// How a drain ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSummary {
    /// Every queued request finished (nothing force-shed) and every
    /// worker exited within the drain deadline.
    pub clean: bool,
    /// Requests force-shed at the drain deadline.
    pub force_shed: u64,
    pub served_ok: u64,
    pub worker_panics: u64,
    pub worker_restarts: u64,
    pub journal_entries: usize,
}

/// A running daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<DrainSummary>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (same effect as a `shutdown` frame).
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Live stats snapshot as a JSON line (same payload as the `stats`
    /// op).
    pub fn stats_json(&self) -> String {
        self.shared.stats_line("")
    }

    /// Full metrics snapshot (same payload as the `metrics` op),
    /// including snapshot-time gauges and the process-global registry.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.metrics_snapshot()
    }

    /// A snapshot source that outlives [`ServerHandle::wait`] (which
    /// consumes the handle) — `repro serve` captures one up front so the
    /// drained daemon's final metrics can still be written to `--metrics`.
    pub fn metrics_probe(&self) -> impl Fn() -> Snapshot + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.metrics_snapshot()
    }

    /// A drain trigger that outlives [`ServerHandle::wait`]: calling the
    /// returned closure has the same effect as [`ServerHandle::shutdown`].
    /// `repro serve` hands one to the signal watcher so SIGTERM/SIGINT
    /// start a graceful drain while the main thread is blocked in `wait`.
    pub fn drainer(&self) -> impl Fn() + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.draining.store(true, Ordering::SeqCst)
    }

    /// Block until the daemon has drained and return the summary.
    pub fn wait(mut self) -> DrainSummary {
        let summary = self
            .supervisor
            .take()
            .expect("wait called once")
            .join()
            .expect("supervisor never panics");
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        summary
    }
}

/// Start the daemon. Returns once the listener is bound; everything else
/// runs on background threads until [`ServerHandle::wait`].
pub fn start(config: ServeConfig, validator: Arc<Validator>) -> std::io::Result<ServerHandle> {
    start_with_clock(config, validator, Arc::new(SystemClock::new()))
}

/// [`start`] with an explicit clock (virtual-clock tests).
pub fn start_with_clock(
    config: ServeConfig,
    validator: Arc<Validator>,
    clock: Arc<dyn Clock>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let now = clock.now_ms();
    let registry = Registry::new();
    let stats = Stats::register(&registry);
    let journal = match &config.journal_path {
        Some(path) if config.journal_write_through => Some(Journal::write_through(path.clone())?),
        Some(path) => Some(Journal::new(path.clone())),
        None => None,
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_capacity),
        breaker: Mutex::new(CircuitBreaker::new(config.breaker.clone())),
        // 256 slots x 10ms tick: one rotation per 2.56s, plenty for
        // request deadlines in the low seconds.
        wheel: Mutex::new(TimerWheel::new(10, 256, now)),
        journal,
        registry,
        stats,
        draining: AtomicBool::new(false),
        workers_alive: AtomicUsize::new(0),
        validator,
        clock,
        config,
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))?
    };
    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-supervisor".to_string())
            .spawn(move || supervise(&shared))?
    };
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                bump!(shared.stats, connections);
                let shared = Arc::clone(shared);
                // Connection threads are fire-and-forget: they exit when
                // the peer closes, misbehaves, or the drain finishes.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Outcome of trying to read one newline-terminated frame.
enum FrameRead {
    Frame(String),
    /// Peer closed (or errored) — drop the connection silently.
    Closed,
    /// Partial frame stalled past the read timeout (slow-loris).
    Stalled,
    /// Frame exceeded the size cap.
    TooLarge,
}

fn read_frame(stream: &mut TcpStream, pending: &mut Vec<u8>, shared: &Shared) -> FrameRead {
    let max = shared.config.max_frame_bytes;
    let mut buf = [0u8; 4096];
    loop {
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = &line[..line.len() - 1];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            return match std::str::from_utf8(line) {
                Ok(s) => FrameRead::Frame(s.to_string()),
                Err(_) => FrameRead::Frame("\u{fffd}".to_string()), // parses as garbage → 400
            };
        }
        if pending.len() > max {
            return FrameRead::TooLarge;
        }
        match stream.read(&mut buf) {
            Ok(0) => return FrameRead::Closed,
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !pending.is_empty() {
                    return FrameRead::Stalled;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return FrameRead::Closed;
                }
                // Idle between frames: keep waiting.
            }
            Err(_) => return FrameRead::Closed,
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    let mut pending = Vec::new();
    loop {
        let line = match read_frame(&mut stream, &mut pending, shared) {
            FrameRead::Frame(line) => line,
            FrameRead::Closed => return,
            FrameRead::Stalled => {
                bump!(shared.stats, slow_loris_closed);
                return;
            }
            FrameRead::TooLarge => {
                bump!(shared.stats, oversize_frames);
                let _ = write_line(
                    &mut stream,
                    &protocol::error_line("", code::TOO_LARGE, "frame too large"),
                );
                return;
            }
        };
        if line.is_empty() {
            continue;
        }
        bump!(shared.stats, frames);
        let response = match protocol::parse_request(&line) {
            Err(why) => {
                bump!(shared.stats, bad_frames);
                protocol::error_line("", code::BAD_REQUEST, &why)
            }
            Ok(req) => dispatch(req, shared),
        };
        if write_line(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Handle one parsed request on the connection thread.
fn dispatch(req: Request, shared: &Arc<Shared>) -> String {
    match req.op {
        Op::Health => shared.health_line(&req.id),
        Op::Stats => shared.stats_line(&req.id),
        Op::Metrics => shared.metrics_line(&req.id, req.format.as_deref()),
        Op::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            protocol::response_line(&req.id, code::OK, &[("draining", "true".to_string())])
        }
        Op::ChaosKillShard => {
            bump!(shared.stats, bad_frames);
            protocol::error_line(
                &req.id,
                code::BAD_REQUEST,
                "chaos_kill_shard is a cluster op; this is a single shard",
            )
        }
        Op::ChaosPanic if !shared.config.enable_chaos_ops => {
            bump!(shared.stats, bad_frames);
            protocol::error_line(&req.id, code::BAD_REQUEST, "chaos ops disabled")
        }
        Op::Validate | Op::Classify | Op::ChaosPanic => submit(req, shared),
    }
}

/// Admission control + queue + deadline wait for classification work.
fn submit(req: Request, shared: &Arc<Shared>) -> String {
    let tracer = trace::tracer();
    let _request_span = tracer.span("serve.request");
    let admission_start = shared.now();
    if shared.draining.load(Ordering::SeqCst) {
        bump!(shared.stats, shed_draining);
        return protocol::error_line(&req.id, code::SHED, "draining");
    }
    let now = shared.now();
    if shared.breaker.lock().unwrap().admit(now) == Admission::Shed {
        bump!(shared.stats, shed_breaker);
        return protocol::error_line(&req.id, code::SHED, "circuit open");
    }
    let budget = req
        .deadline_ms
        .unwrap_or(shared.config.deadline_ms)
        .min(shared.config.deadline_ms)
        .max(1);
    let deadline = now + budget;
    let slot = Arc::new(ResponseSlot::new());
    let job = Job {
        op: req.op,
        id: req.id.clone(),
        der: req.der,
        chain: req.chain,
        enqueued_ms: now,
        slot: Arc::clone(&slot),
    };
    match shared.queue.try_push(job) {
        Err(PushError::Full(_)) => {
            shared.breaker.lock().unwrap().cancel();
            bump!(shared.stats, shed_queue_full);
            return protocol::error_line(&req.id, code::SHED, "queue full");
        }
        Err(PushError::Closed(_)) => {
            shared.breaker.lock().unwrap().cancel();
            bump!(shared.stats, shed_draining);
            return protocol::error_line(&req.id, code::SHED, "draining");
        }
        Ok(()) => {}
    }
    bump!(shared.stats, accepted);
    tracer.record_span(
        "serve.admission",
        admission_start,
        shared.now().saturating_sub(admission_start),
    );
    shared.wheel.lock().unwrap().schedule(
        deadline,
        WheelEntry {
            slot: Arc::clone(&slot),
            line: protocol::error_line(&req.id, code::DEADLINE, "deadline exceeded"),
            enqueued_ms: now,
        },
    );
    // The wheel answers 408 within a tick of the deadline; the extra
    // margin here only covers supervisor scheduling hiccups.
    if let Some(line) = slot.wait(Duration::from_millis(budget + 500)) {
        return line;
    }
    if slot.fill(protocol::error_line(
        &req.id,
        code::DEADLINE,
        "deadline exceeded",
    )) {
        bump!(shared.stats, deadline_expired);
        let latency = shared.now().saturating_sub(now);
        shared.record(false, latency);
        shared.stats.request_latency_ms.record(latency);
    }
    slot.wait(Duration::from_millis(0))
        .expect("slot filled above")
}

/// Why a worker's loop ended.
enum WorkerExit {
    /// Queue closed and empty: drain complete.
    Drained,
    /// The classification panicked; the supervisor must restart us.
    Panicked,
}

fn worker_loop(shared: &Arc<Shared>) -> WorkerExit {
    let tracer = trace::tracer();
    while let Some(job) = shared.queue.pop() {
        if job.slot.is_filled() {
            // Deadline fired while queued; don't waste the CPU.
            bump!(shared.stats, deadline_skipped);
            continue;
        }
        let popped = shared.now();
        let wait = popped.saturating_sub(job.enqueued_ms);
        shared.stats.queue_wait_ms.record(wait);
        tracer.record_span("serve.queue_wait", job.enqueued_ms, wait);
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&job, shared)));
        let done = shared.now();
        tracer.record_span("serve.validate", popped, done.saturating_sub(popped));
        let latency = done.saturating_sub(job.enqueued_ms);
        // Record the outcome (breaker window + latency histogram) only
        // if we win the response race: a request whose deadline already
        // answered 408 was recorded as a failure by whoever filled the
        // slot, and recording this late result too would count one
        // request twice — and count a response the client never saw.
        match outcome {
            Ok(line) => {
                if job.slot.fill(line) {
                    shared.record(true, latency);
                    bump!(shared.stats, served_ok);
                    shared.stats.request_latency_ms.record(latency);
                }
            }
            Err(_) => {
                bump!(shared.stats, worker_panics);
                // Journal the panic before answering: every 500 the
                // client can observe maps to a durable panic record.
                if let Some(journal) = &shared.journal {
                    journal.append(
                        job.op.as_str(),
                        &job.der,
                        &job.chain,
                        crate::journal::PANIC_RESULT,
                    );
                }
                let filled = job.slot.fill(protocol::error_line(
                    &job.id,
                    code::PANIC,
                    "worker panicked",
                ));
                if filled {
                    shared.record(false, latency);
                    shared.stats.request_latency_ms.record(latency);
                }
                return WorkerExit::Panicked;
            }
        }
    }
    WorkerExit::Drained
}

/// The work itself (runs under `catch_unwind`).
fn execute(job: &Job, shared: &Arc<Shared>) -> String {
    if job.op == Op::ChaosPanic {
        panic!("injected chaos panic");
    }
    let outcome = shared.validator.classify_der(&job.der, &job.chain);
    if let Some(journal) = &shared.journal {
        journal.append(job.op.as_str(), &job.der, &job.chain, &outcome.to_string());
    }
    protocol::response_line(
        &job.id,
        code::OK,
        &protocol::classification_fields(job.op, &outcome),
    )
}

fn spawn_worker(shared: &Arc<Shared>, n: usize) -> JoinHandle<WorkerExit> {
    shared.workers_alive.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("serve-worker-{n}"))
        .spawn(move || {
            let exit = worker_loop(&shared);
            shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
            exit
        })
        .expect("spawn worker")
}

/// The supervisor: drives the timer wheel, flushes the journal, restarts
/// dead workers, and conducts the drain.
fn supervise(shared: &Arc<Shared>) -> DrainSummary {
    let tick = Duration::from_millis(5);
    let mut rng = StdRng::seed_from_u64(shared.config.seed ^ 0x5e72_317e);
    let workers = shared.config.workers.max(1);
    let mut pool: Vec<Option<JoinHandle<WorkerExit>>> = (0..workers)
        .map(|n| Some(spawn_worker(shared, n)))
        .collect();
    let mut consecutive_deaths = vec![0u32; workers];
    let mut last_flush = shared.now();
    let mut drain_started: Option<u64> = None;
    let mut force_shed = 0u64;
    let mut last_panics_seen = 0u64;
    let mut last_panic_ms = shared.now();

    loop {
        std::thread::sleep(tick);
        let now = shared.now();

        // Fire expired deadlines: answer 408 and count the miss against
        // the breaker (sustained overload must trip it).
        let fired = shared.wheel.lock().unwrap().advance(now);
        for entry in fired {
            if entry.slot.fill(entry.line) {
                bump!(shared.stats, deadline_expired);
                let latency = now.saturating_sub(entry.enqueued_ms);
                shared.record(false, latency);
                shared.stats.request_latency_ms.record(latency);
            }
        }

        // Restart dead workers (jittered exponential backoff). During
        // drain, replacements still help finish the backlog.
        for (n, handle) in pool.iter_mut().enumerate() {
            let finished = handle.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let exit = handle
                .take()
                .expect("slot occupied")
                .join()
                .unwrap_or(WorkerExit::Panicked);
            match exit {
                WorkerExit::Drained => {} // queue closed: stay down
                WorkerExit::Panicked => {
                    consecutive_deaths[n] += 1;
                    let base = shared
                        .config
                        .restart_backoff_ms
                        .saturating_mul(1 << consecutive_deaths[n].min(6))
                        .min(500);
                    let jitter = rng.gen_range(0..=base.max(1));
                    std::thread::sleep(Duration::from_millis(base / 2 + jitter / 2));
                    bump!(shared.stats, worker_restarts);
                    *handle = Some(spawn_worker(shared, n));
                }
            }
        }
        // A quiet interval heals the backoff. (This used to compare the
        // *lifetime* panic total against zero, so after the first panic
        // the backoff never healed and every later death restarted at
        // the maximum delay.)
        let panics_now = shared.stats.worker_panics.value();
        if panics_now != last_panics_seen {
            last_panics_seen = panics_now;
            last_panic_ms = now;
        } else if now.saturating_sub(last_panic_ms) >= 1_000 {
            consecutive_deaths.iter_mut().for_each(|d| *d = 0);
        }

        // Periodic journal flush (crash-safety between drains).
        if now.saturating_sub(last_flush) >= 250 {
            if let Some(journal) = &shared.journal {
                let _ = journal.flush();
            }
            last_flush = now;
        }

        // Drain conduct.
        if shared.draining.load(Ordering::SeqCst) {
            let started = *drain_started.get_or_insert_with(|| {
                // Stop admitting; pending items remain poppable.
                shared.queue.close();
                now
            });
            let backlog_done = shared.queue.is_empty();
            let workers_done = pool.iter().all(Option::is_none);
            let expired = now.saturating_sub(started) >= shared.config.drain_deadline_ms;
            if (backlog_done && workers_done) || expired {
                if expired {
                    // Shed whatever is still queued so waiting clients
                    // get a definitive 503 instead of a hang.
                    while let Some(job) = pop_now(shared) {
                        force_shed += 1;
                        job.slot
                            .fill(protocol::error_line(&job.id, code::SHED, "drain deadline"));
                    }
                }
                if let Some(journal) = &shared.journal {
                    let _ = journal.flush();
                }
                let clean = backlog_done && workers_done && force_shed == 0;
                return DrainSummary {
                    clean,
                    force_shed,
                    served_ok: shared.stats.served_ok.value(),
                    worker_panics: shared.stats.worker_panics.value(),
                    worker_restarts: shared.stats.worker_restarts.value(),
                    journal_entries: shared.journal.as_ref().map_or(0, Journal::len),
                };
            }
        }
    }
}

/// Non-blocking pop for the forced-drain path: the queue is closed, so a
/// `pop` only blocks when it is empty — check first.
fn pop_now(shared: &Arc<Shared>) -> Option<Job> {
    if shared.queue.is_empty() {
        None
    } else {
        shared.queue.pop()
    }
}
