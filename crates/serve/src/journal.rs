//! The crash-safe request journal.
//!
//! Every classification the daemon completes is appended here; on drain
//! (and periodically in between) the journal is flushed with the same
//! discipline as the scanner's `scan.ckpt`: versioned header, SHA-256
//! integrity digest over the body, and an atomic temp-file + rename so a
//! crash mid-flush leaves the previous journal intact, never a torn one.
//!
//! ```text
//! silentcert-serve-journal v1
//! sha256 <hex digest of everything after this line>
//! <seq>\t<op>\t<leaf der hex>\t<chain der hex,...>\t<result>
//! ...
//! ```
//!
//! The journal records the request *input* (leaf + presented chain DER)
//! alongside the result string, which makes it replayable: feed every
//! entry back through a validator built from the same corpus and the
//! results must match byte-for-byte ([`replay`]). That is the server's
//! end-to-end correctness check — a drain under chaos proves nothing was
//! half-classified.

use silentcert_validate::Validator;
use silentcert_x509::Certificate;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const HEADER: &str = "silentcert-serve-journal v1";

/// One journaled classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    pub seq: u64,
    /// `"validate"` or `"classify"`.
    pub op: String,
    pub der: Vec<u8>,
    pub chain: Vec<Vec<u8>>,
    /// The canonical `Display` form of the classification.
    pub result: String,
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err("odd-length hex".to_string());
    }
    let nibble = |b: u8| match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        _ => Err("bad hex digit".to_string()),
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i])? << 4) | nibble(bytes[i + 1])?);
    }
    Ok(out)
}

impl JournalEntry {
    fn to_line(&self) -> String {
        let chain = self
            .chain
            .iter()
            .map(|der| hex(der))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.seq,
            self.op,
            hex(&self.der),
            chain,
            self.result
        )
    }

    fn from_line(line: &str) -> Result<JournalEntry, String> {
        let mut f = line.splitn(5, '\t');
        let mut field = |what: &str| f.next().ok_or_else(|| format!("missing {what}"));
        let seq = field("seq")?
            .parse::<u64>()
            .map_err(|_| "bad seq".to_string())?;
        let op = field("op")?.to_string();
        let der = unhex(field("der")?)?;
        let chain_field = field("chain")?;
        let chain = if chain_field.is_empty() {
            Vec::new()
        } else {
            chain_field
                .split(',')
                .map(unhex)
                .collect::<Result<Vec<_>, _>>()?
        };
        let result = field("result")?.to_string();
        Ok(JournalEntry {
            seq,
            op,
            der,
            chain,
            result,
        })
    }
}

/// Same atomic temp-file + rename discipline as `scan.ckpt` (see
/// `silentcert_sim::export::atomic_write`; duplicated here so the serving
/// crate stays free of the simulator dependency).
fn atomic_write(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension(match path.extension() {
        Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let result = (|| {
        let mut out = BufWriter::new(fs::File::create(&tmp)?);
        out.write_all(content.as_bytes())?;
        out.flush()?;
        out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    })();
    match result {
        Ok(()) => fs::rename(&tmp, path),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Thread-shared journal: workers append, the supervisor flushes.
pub struct Journal {
    path: PathBuf,
    state: Mutex<JournalState>,
}

struct JournalState {
    lines: Vec<String>,
    next_seq: u64,
    /// Lines persisted by the last flush (skip no-op rewrites).
    flushed_lines: usize,
    flushes: u64,
}

impl Journal {
    pub fn new(path: PathBuf) -> Journal {
        Journal {
            path,
            state: Mutex::new(JournalState {
                lines: Vec::new(),
                next_seq: 0,
                flushed_lines: 0,
                flushes: 0,
            }),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed classification; returns its sequence number.
    pub fn append(&self, op: &str, der: &[u8], chain: &[Certificate], result: &str) -> u64 {
        let mut s = self.state.lock().unwrap();
        let seq = s.next_seq;
        s.next_seq += 1;
        let entry = JournalEntry {
            seq,
            op: op.to_string(),
            der: der.to_vec(),
            chain: chain.iter().map(|c| c.to_der().to_vec()).collect(),
            result: result.to_string(),
        };
        s.lines.push(entry.to_line());
        seq
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.state.lock().unwrap().flushes
    }

    /// Persist atomically if anything changed since the last flush.
    pub fn flush(&self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.lines.len() == s.flushed_lines && s.flushes > 0 {
            return Ok(());
        }
        let body = if s.lines.is_empty() {
            String::new()
        } else {
            format!("{}\n", s.lines.join("\n"))
        };
        let digest = hex(&silentcert_crypto::sha256(body.as_bytes()));
        let content = format!("{HEADER}\nsha256 {digest}\n{body}");
        atomic_write(&self.path, &content)?;
        s.flushed_lines = s.lines.len();
        s.flushes += 1;
        Ok(())
    }
}

/// Read a journal back, verifying header and digest.
pub fn read_journal(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err("bad or missing journal header".to_string());
    }
    let digest_line = lines.next().ok_or("missing digest line")?;
    let digest = digest_line
        .strip_prefix("sha256 ")
        .ok_or("malformed digest line")?;
    let body_start = text
        .match_indices('\n')
        .nth(1)
        .map(|(i, _)| i + 1)
        .ok_or("truncated journal")?;
    let body = &text[body_start..];
    if hex(&silentcert_crypto::sha256(body.as_bytes())) != digest {
        return Err("integrity digest mismatch (truncated or corrupt journal)".to_string());
    }
    body.lines()
        .map(JournalEntry::from_line)
        .collect::<Result<Vec<_>, _>>()
}

/// Outcome of replaying a journal against a validator.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    pub entries: usize,
    /// Entries whose re-classification differed from the journaled
    /// result — zero for a correct drain.
    pub mismatches: usize,
}

/// Re-run every journaled classification and compare byte-for-byte.
pub fn replay(path: &Path, validator: &Validator) -> Result<ReplayReport, String> {
    let entries = read_journal(path)?;
    let mut report = ReplayReport {
        entries: entries.len(),
        mismatches: 0,
    };
    for entry in &entries {
        let chain: Vec<Certificate> = entry
            .chain
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("journal entry {}: chain: {e}", entry.seq))?;
        let outcome = validator.classify_der(&entry.der, &chain);
        if outcome.to_string() != entry.result {
            report.mismatches += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silentcert_validate::TrustStore;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("silentcert-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_entries_with_digest() {
        let path = temp("roundtrip");
        let j = Journal::new(path.clone());
        j.append("classify", &[0xde, 0xad], &[], "invalid: parse error");
        j.append("validate", &[0x30, 0x00], &[], "invalid: parse error");
        j.flush().unwrap();
        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[0].der, vec![0xde, 0xad]);
        assert_eq!(entries[1].op, "validate");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let path = temp("corrupt");
        let j = Journal::new(path.clone());
        j.append("classify", &[1, 2, 3], &[], "invalid: parse error");
        j.flush().unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("9\tclassify\tdead\t\tforged\n");
        fs::write(&path, text).unwrap();
        assert!(read_journal(&path).unwrap_err().contains("integrity"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flush_skips_when_unchanged() {
        let path = temp("noop");
        let j = Journal::new(path.clone());
        j.append("classify", &[9], &[], "invalid: parse error");
        j.flush().unwrap();
        j.flush().unwrap();
        assert_eq!(j.flushes(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_agrees_with_live_classification() {
        let path = temp("replay");
        let v = Validator::new(TrustStore::new());
        let j = Journal::new(path.clone());
        let garbage = [0xde, 0xad, 0xbe, 0xef];
        let outcome = v.classify_der(&garbage, &[]);
        j.append("classify", &garbage, &[], &outcome.to_string());
        j.flush().unwrap();
        let report = replay(&path, &v).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                entries: 1,
                mismatches: 0
            }
        );
        let _ = fs::remove_file(&path);
    }
}
