//! The crash-safe request journal.
//!
//! Every classification the daemon completes is appended here; worker
//! panics are journaled too, so every 500 the daemon returns maps to a
//! durable panic record. The v2 format protects each record with its own
//! checksum so flushes can *append* instead of rewriting the whole file:
//!
//! ```text
//! silentcert-serve-journal v2
//! <sha256[..16] of rest>\t<seq>\t<op>\t<leaf der hex>\t<chain hex,...>\t<result>
//! ...
//! ```
//!
//! The first flush writes header + backlog via atomic temp-file + rename
//! (a crash mid-flush leaves the previous journal intact); later flushes
//! append only new records. A crash mid-append therefore leaves at most
//! one torn record *at the tail*, which [`read_journal`] tolerates and
//! reports — while a checksum failure anywhere **before** the tail is
//! real corruption and stays a hard error.
//!
//! The journal records the request *input* (leaf + presented chain DER)
//! alongside the result string, which makes it replayable: feed every
//! entry back through a validator built from the same corpus and the
//! results must match byte-for-byte ([`replay`]). That is the server's
//! end-to-end correctness check — a drain under chaos proves nothing was
//! half-classified.

use silentcert_validate::Validator;
use silentcert_x509::Certificate;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const HEADER: &str = "silentcert-serve-journal v2";

/// Hex digits of the per-line checksum (64-bit prefix of SHA-256).
const CHECK_LEN: usize = 16;

/// Result string journaled when a worker panics mid-classification.
/// Replay counts these instead of re-classifying them: the journaled
/// "result" is the panic itself, not a classification.
pub const PANIC_RESULT: &str = "panic: worker panicked";

/// One journaled classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    pub seq: u64,
    /// `"validate"`, `"classify"`, or `"chaos_panic"`.
    pub op: String,
    pub der: Vec<u8>,
    pub chain: Vec<Vec<u8>>,
    /// The canonical `Display` form of the classification, or
    /// [`PANIC_RESULT`] for a journaled worker panic.
    pub result: String,
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    let nibble = |b: u8| match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        _ => Err("bad hex digit".to_string()),
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i])? << 4) | nibble(bytes[i + 1])?);
    }
    Ok(out)
}

/// The per-line checksum over everything after the checksum field.
fn line_check(rest: &str) -> String {
    hex(&silentcert_crypto::sha256(rest.as_bytes()))[..CHECK_LEN].to_string()
}

impl JournalEntry {
    fn to_line(&self) -> String {
        let chain = self
            .chain
            .iter()
            .map(|der| hex(der))
            .collect::<Vec<_>>()
            .join(",");
        let rest = format!(
            "{}\t{}\t{}\t{}\t{}",
            self.seq,
            self.op,
            hex(&self.der),
            chain,
            self.result
        );
        format!("{}\t{}", line_check(&rest), rest)
    }

    fn from_line(line: &str) -> Result<JournalEntry, String> {
        let (check, rest) = line
            .split_once('\t')
            .ok_or_else(|| "missing checksum field".to_string())?;
        if check.len() != CHECK_LEN || line_check(rest) != check {
            return Err("checksum mismatch".to_string());
        }
        let mut f = rest.splitn(5, '\t');
        let mut field = |what: &str| f.next().ok_or_else(|| format!("missing {what}"));
        let seq = field("seq")?
            .parse::<u64>()
            .map_err(|_| "bad seq".to_string())?;
        let op = field("op")?.to_string();
        let der = unhex(field("der")?)?;
        let chain_field = field("chain")?;
        let chain = if chain_field.is_empty() {
            Vec::new()
        } else {
            chain_field
                .split(',')
                .map(unhex)
                .collect::<Result<Vec<_>, _>>()?
        };
        let result = field("result")?.to_string();
        Ok(JournalEntry {
            seq,
            op,
            der,
            chain,
            result,
        })
    }
}

/// Same atomic temp-file + rename discipline as `scan.ckpt` (see
/// `silentcert_sim::export::atomic_write`; duplicated here so the serving
/// crate stays free of the simulator dependency).
fn atomic_write(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension(match path.extension() {
        Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let result = (|| {
        let mut out = BufWriter::new(fs::File::create(&tmp)?);
        out.write_all(content.as_bytes())?;
        out.flush()?;
        out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    })();
    match result {
        Ok(()) => fs::rename(&tmp, path),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Thread-shared journal: workers append, the supervisor flushes.
pub struct Journal {
    path: PathBuf,
    state: Mutex<JournalState>,
}

/// How records reach the file.
enum Sink {
    /// Records accumulate in memory; [`Journal::flush`] persists them
    /// (first flush rewrites atomically, later flushes append).
    Buffered,
    /// Every [`Journal::append`] writes the record through to the open
    /// file before returning. A SIGKILL after an append therefore never
    /// loses that record (page-cache writes survive process death) —
    /// the durability the cluster's journaled-or-refused accounting
    /// needs when a response must not outrun its journal entry.
    /// [`Journal::flush`] only fsyncs.
    WriteThrough(fs::File),
}

struct JournalState {
    lines: Vec<String>,
    next_seq: u64,
    /// Lines persisted by the last flush (skip no-op rewrites, append the
    /// rest). In write-through mode: lines already written to the file.
    flushed_lines: usize,
    flushes: u64,
    sink: Sink,
}

impl Journal {
    pub fn new(path: PathBuf) -> Journal {
        Journal {
            path,
            state: Mutex::new(JournalState {
                lines: Vec::new(),
                next_seq: 0,
                flushed_lines: 0,
                flushes: 0,
                sink: Sink::Buffered,
            }),
        }
    }

    /// A write-through journal: the header is written immediately and
    /// every appended record hits the file before `append` returns, so
    /// a process killed with SIGKILL right after answering a request
    /// still leaves that request's record on disk.
    pub fn write_through(path: PathBuf) -> io::Result<Journal> {
        let mut file = fs::File::create(&path)?;
        file.write_all(HEADER.as_bytes())?;
        file.write_all(b"\n")?;
        Ok(Journal {
            path,
            state: Mutex::new(JournalState {
                lines: Vec::new(),
                next_seq: 0,
                flushed_lines: 0,
                flushes: 0,
                sink: Sink::WriteThrough(file),
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed classification; returns its sequence number.
    pub fn append(&self, op: &str, der: &[u8], chain: &[Certificate], result: &str) -> u64 {
        let mut s = self.state.lock().unwrap();
        let seq = s.next_seq;
        s.next_seq += 1;
        let entry = JournalEntry {
            seq,
            op: op.to_string(),
            der: der.to_vec(),
            chain: chain.iter().map(|c| c.to_der().to_vec()).collect(),
            result: result.to_string(),
        };
        s.lines.push(entry.to_line());
        let s = &mut *s;
        if let Sink::WriteThrough(file) = &mut s.sink {
            // Only write through when nothing earlier is still pending,
            // so records never reach the file out of order; a failed
            // write leaves the tail buffered for `flush` to retry.
            if s.flushed_lines + 1 == s.lines.len() {
                let mut buf = s.lines[s.flushed_lines].clone();
                buf.push('\n');
                if file.write_all(buf.as_bytes()).is_ok() {
                    s.flushed_lines += 1;
                }
            }
        }
        seq
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.state.lock().unwrap().flushes
    }

    /// Persist new records. The first flush writes the whole file
    /// atomically; subsequent flushes append only the records added since
    /// — per-line checksums keep a torn append detectable and confined to
    /// the tail.
    pub fn flush(&self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if let Sink::WriteThrough(_) = s.sink {
            // Records are already in the file (modulo a failed append,
            // retried here); flushing only writes the backlog and syncs.
            let s = &mut *s;
            let Sink::WriteThrough(file) = &mut s.sink else {
                unreachable!()
            };
            if s.flushed_lines < s.lines.len() {
                let mut tail = String::new();
                for line in &s.lines[s.flushed_lines..] {
                    tail.push_str(line);
                    tail.push('\n');
                }
                file.write_all(tail.as_bytes())?;
                s.flushed_lines = s.lines.len();
            }
            file.sync_all()?;
            s.flushes += 1;
            return Ok(());
        }
        if s.lines.len() == s.flushed_lines && s.flushes > 0 {
            return Ok(());
        }
        if s.flushes == 0 {
            let mut content = String::from(HEADER);
            content.push('\n');
            for line in &s.lines {
                content.push_str(line);
                content.push('\n');
            }
            atomic_write(&self.path, &content)?;
        } else {
            let mut tail = String::new();
            for line in &s.lines[s.flushed_lines..] {
                tail.push_str(line);
                tail.push('\n');
            }
            let mut f = fs::OpenOptions::new().append(true).open(&self.path)?;
            f.write_all(tail.as_bytes())?;
            f.sync_all()?;
        }
        s.flushed_lines = s.lines.len();
        s.flushes += 1;
        Ok(())
    }
}

/// A journal read back from disk.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct JournalReadout {
    pub entries: Vec<JournalEntry>,
    /// Whether exactly one torn trailing record was tolerated (crash
    /// mid-append). Anything torn before the tail is an error instead.
    pub truncated_tail: bool,
}

/// Read a journal back, verifying the header and every record checksum.
///
/// A single unreadable **final** line is tolerated (and flagged): an
/// append interrupted by a crash tears at most the last record. An
/// unreadable line anywhere else means real corruption and is an error.
pub fn read_journal(path: &Path) -> Result<JournalReadout, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err("bad or missing journal header".to_string());
    }
    let body: Vec<&str> = lines.collect();
    let mut out = JournalReadout::default();
    for (i, line) in body.iter().enumerate() {
        match JournalEntry::from_line(line) {
            Ok(entry) => out.entries.push(entry),
            Err(e) if i + 1 == body.len() => {
                // Torn tail from a mid-append crash: tolerate, but loudly.
                eprintln!(
                    "journal {}: tolerating torn trailing record ({e})",
                    path.display()
                );
                out.truncated_tail = true;
            }
            Err(e) => {
                return Err(format!(
                    "journal record {}: {e} (mid-file corruption)",
                    i + 1
                ))
            }
        }
    }
    Ok(out)
}

/// Outcome of replaying a journal against a validator.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    pub entries: usize,
    /// Entries whose re-classification differed from the journaled
    /// result — zero for a correct drain.
    pub mismatches: usize,
    /// Journaled worker-panic records (counted, not re-classified).
    pub panics: usize,
    /// Whether a torn trailing record was tolerated on read.
    pub truncated_tail: bool,
}

/// Re-run every journaled classification and compare byte-for-byte.
pub fn replay(path: &Path, validator: &Validator) -> Result<ReplayReport, String> {
    let readout = read_journal(path)?;
    let mut report = ReplayReport {
        entries: readout.entries.len(),
        truncated_tail: readout.truncated_tail,
        ..ReplayReport::default()
    };
    for entry in &readout.entries {
        if entry.result.starts_with("panic:") {
            report.panics += 1;
            continue;
        }
        let chain: Vec<Certificate> = entry
            .chain
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("journal entry {}: chain: {e}", entry.seq))?;
        let outcome = validator.classify_der(&entry.der, &chain);
        if outcome.to_string() != entry.result {
            report.mismatches += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silentcert_validate::TrustStore;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("silentcert-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_entries_with_checksums() {
        let path = temp("roundtrip");
        let j = Journal::new(path.clone());
        j.append("classify", &[0xde, 0xad], &[], "invalid: parse error");
        j.append("validate", &[0x30, 0x00], &[], "invalid: parse error");
        j.flush().unwrap();
        let readout = read_journal(&path).unwrap();
        assert!(!readout.truncated_tail);
        assert_eq!(readout.entries.len(), 2);
        assert_eq!(readout.entries[0].seq, 0);
        assert_eq!(readout.entries[0].der, vec![0xde, 0xad]);
        assert_eq!(readout.entries[1].op, "validate");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flushes_append_incrementally() {
        let path = temp("incremental");
        let j = Journal::new(path.clone());
        j.append("classify", &[1], &[], "invalid: parse error");
        j.flush().unwrap();
        let after_first = fs::read_to_string(&path).unwrap();
        j.append("classify", &[2], &[], "invalid: parse error");
        j.flush().unwrap();
        let after_second = fs::read_to_string(&path).unwrap();
        // Second flush appended; it did not rewrite the prefix.
        assert!(after_second.starts_with(&after_first));
        assert_eq!(read_journal(&path).unwrap().entries.len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_detected() {
        let path = temp("corrupt");
        let j = Journal::new(path.clone());
        j.append("classify", &[1, 2, 3], &[], "invalid: parse error");
        j.append("classify", &[4, 5, 6], &[], "invalid: parse error");
        j.flush().unwrap();
        // Forge a record *between* two genuine ones.
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, "0000000000000000\t9\tclassify\tdead\t\tforged");
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.contains("mid-file corruption"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_record_is_tolerated() {
        let path = temp("torn");
        let j = Journal::new(path.clone());
        j.append("classify", &[1], &[], "invalid: parse error");
        j.append("classify", &[2], &[], "invalid: parse error");
        j.flush().unwrap();
        // Simulate a crash mid-append: half of a third record.
        let mut text = fs::read_to_string(&path).unwrap();
        let full = JournalEntry {
            seq: 2,
            op: "classify".into(),
            der: vec![3],
            chain: Vec::new(),
            result: "invalid: parse error".into(),
        }
        .to_line();
        text.push_str(&full[..full.len() / 2]);
        fs::write(&path, &text).unwrap();
        let readout = read_journal(&path).unwrap();
        assert!(readout.truncated_tail);
        assert_eq!(readout.entries.len(), 2, "intact prefix survives");
        let _ = fs::remove_file(&path);
    }

    /// Re-runs this test binary as a child that appends records and then
    /// `abort()`s midway through writing one more — a real kill, not a
    /// simulated truncation. The survivor journal must replay.
    #[test]
    fn killed_mid_append_leaves_replayable_journal() {
        const ENV: &str = "SILENTCERT_JOURNAL_KILL_PATH";
        if let Ok(path) = std::env::var(ENV) {
            // Child mode: flush two records, then die mid-append.
            let j = Journal::new(PathBuf::from(&path));
            j.append("classify", &[1], &[], "invalid: parse error");
            j.append("classify", &[2], &[], "invalid: parse error");
            j.flush().unwrap();
            let torn = JournalEntry {
                seq: 2,
                op: "classify".into(),
                der: vec![3],
                chain: Vec::new(),
                result: "invalid: parse error".into(),
            }
            .to_line();
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
            f.sync_all().unwrap();
            std::process::abort();
        }

        let path = temp("killed");
        let _ = fs::remove_file(&path);
        let status = std::process::Command::new(std::env::current_exe().unwrap())
            .args([
                "journal::tests::killed_mid_append_leaves_replayable_journal",
                "--exact",
                "--nocapture",
            ])
            .env(ENV, path.to_str().unwrap())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap();
        assert!(!status.success(), "child must have died mid-append");
        let readout = read_journal(&path).unwrap();
        assert!(readout.truncated_tail, "torn tail is flagged");
        assert_eq!(readout.entries.len(), 2, "flushed prefix survives");
        let report = replay(&path, &Validator::new(TrustStore::new())).unwrap();
        assert_eq!(report.entries, 2);
        assert_eq!(report.mismatches, 0);
        assert!(report.truncated_tail);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_through_records_are_durable_before_any_flush() {
        let path = temp("writethrough");
        let j = Journal::write_through(path.clone()).unwrap();
        j.append("classify", &[1], &[], "invalid: parse error");
        j.append("classify", &[2], &[], "invalid: parse error");
        // No flush has happened: the records must already be on disk —
        // a SIGKILL here loses nothing that was appended.
        let readout = read_journal(&path).unwrap();
        assert_eq!(readout.entries.len(), 2);
        assert!(!readout.truncated_tail);
        j.flush().unwrap();
        j.append("classify", &[3], &[], "invalid: parse error");
        assert_eq!(read_journal(&path).unwrap().entries.len(), 3);
        assert_eq!(j.len(), 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flush_skips_when_unchanged() {
        let path = temp("noop");
        let j = Journal::new(path.clone());
        j.append("classify", &[9], &[], "invalid: parse error");
        j.flush().unwrap();
        j.flush().unwrap();
        assert_eq!(j.flushes(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_agrees_with_live_classification_and_counts_panics() {
        let path = temp("replay");
        let v = Validator::new(TrustStore::new());
        let j = Journal::new(path.clone());
        let garbage = [0xde, 0xad, 0xbe, 0xef];
        let outcome = v.classify_der(&garbage, &[]);
        j.append("classify", &garbage, &[], &outcome.to_string());
        j.append("chaos_panic", &garbage, &[], PANIC_RESULT);
        j.flush().unwrap();
        let report = replay(&path, &v).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                entries: 2,
                mismatches: 0,
                panics: 1,
                truncated_tail: false,
            }
        );
        let _ = fs::remove_file(&path);
    }
}
