//! End-to-end kill-resilience smoke test (the PR's acceptance check).
//!
//! Drives a live daemon over real sockets with the chaos loadgen —
//! malformed frames, oversize frames, mid-frame disconnects, and
//! injected worker panics — and asserts the supervision story holds:
//! the daemon sheds rather than collapses, restarts every panicked
//! worker, keeps answering `health` throughout, drains cleanly on
//! shutdown, and leaves a journal that replays to byte-identical
//! classification results.

use silentcert_crypto::sig::{KeyPair, SimKeyPair};
use silentcert_serve::loadgen::{self, ClientFaultPlan, LoadgenOptions};
use silentcert_serve::{journal, server, BreakerConfig, ServeConfig};
use silentcert_validate::{TrustStore, Validator};
use silentcert_x509::{Certificate, CertificateBuilder, Name, Time};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn key(seed: &str) -> KeyPair {
    KeyPair::Sim(SimKeyPair::from_seed(seed.as_bytes()))
}

fn years(from: i32, to: i32) -> (Time, Time) {
    (
        Time::from_ymd(from, 1, 1).unwrap(),
        Time::from_ymd(to, 1, 1).unwrap(),
    )
}

struct Pki {
    root: Certificate,
    intermediate: Certificate,
    intermediate_key: KeyPair,
}

fn pki() -> Pki {
    let root_key = key("smoke-root");
    let (nb, na) = years(2000, 2040);
    let root = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("Smoke Root CA"))
        .validity(nb, na)
        .ca(None)
        .self_signed(&root_key);
    let intermediate_key = key("smoke-intermediate");
    let intermediate = CertificateBuilder::new()
        .serial_u64(2)
        .subject(Name::with_common_name("Smoke Intermediate CA"))
        .issuer(root.subject.clone())
        .public_key(intermediate_key.public())
        .validity(nb, na)
        .ca(Some(0))
        .sign_with(&root_key);
    Pki {
        root,
        intermediate,
        intermediate_key,
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// A representative request mix: valid chains, expired leaves,
/// self-signed certs, garbage DER, and (optionally) chaos panics.
fn request_mix(p: &Pki, chaos_panics: bool) -> Vec<String> {
    let mut lines = Vec::new();
    let inter_hex = hex(p.intermediate.to_der());
    for i in 0..8u64 {
        let leaf_key = key(&format!("leaf-{i}"));
        let (nb, na) = years(2013, 2015);
        let leaf = CertificateBuilder::new()
            .serial_u64(100 + i)
            .subject(Name::with_common_name(&format!("site{i}.example")))
            .issuer(p.intermediate.subject.clone())
            .public_key(leaf_key.public())
            .validity(nb, na)
            .sign_with(&p.intermediate_key);
        lines.push(format!(
            r#"{{"op":"classify","id":"v{i}","cert":"{}","chain":["{inter_hex}"]}}"#,
            hex(leaf.to_der())
        ));
        // Same leaf without its chain (incomplete-chain classification).
        lines.push(format!(
            r#"{{"op":"validate","id":"n{i}","cert":"{}"}}"#,
            hex(leaf.to_der())
        ));
    }
    for i in 0..4u64 {
        let ss_key = key(&format!("self-{i}"));
        let (nb, na) = years(2010, 2030);
        let ss = CertificateBuilder::new()
            .serial_u64(200 + i)
            .subject(Name::with_common_name(&format!("device{i}.local")))
            .validity(nb, na)
            .self_signed(&ss_key);
        lines.push(format!(
            r#"{{"op":"classify","id":"s{i}","cert":"{}"}}"#,
            hex(ss.to_der())
        ));
    }
    // Garbage DER still classifies (as a parse error) rather than erroring.
    lines.push(r#"{"op":"classify","id":"g0","cert":"deadbeef"}"#.to_string());
    if chaos_panics {
        for i in 0..3 {
            lines.push(format!(r#"{{"op":"chaos_panic","id":"p{i}"}}"#));
        }
    }
    lines
}

fn send_line(addr: &str, line: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).ok()?;
    Some(resp)
}

#[test]
fn daemon_survives_chaos_and_drains_to_a_replayable_journal() {
    let p = pki();
    let journal_path =
        std::env::temp_dir().join(format!("silentcert-smoke-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let make_validator = || {
        let mut v = Validator::new(TrustStore::from_roots([p.root.clone()]));
        v.add_intermediate(&p.intermediate);
        Arc::new(v)
    };

    let config = ServeConfig {
        workers: 3,
        queue_capacity: 64,
        read_timeout_ms: 200, // fast slow-loris detection for the test
        deadline_ms: 2_000,
        journal_path: Some(journal_path.clone()),
        enable_chaos_ops: true,
        breaker: BreakerConfig {
            // Keep the breaker from tripping on the injected panics: this
            // test is about supervision; breaker behaviour is proptested.
            max_error_rate: 0.95,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = server::start(config, make_validator()).expect("bind");
    let addr = handle.addr().to_string();

    // Health answers before any load.
    let resp = send_line(&addr, r#"{"op":"health","id":"h0"}"#).expect("health up");
    assert!(resp.contains("\"code\":200"), "health before load: {resp}");

    // Chaos load: transport faults + chaos_panic frames mixed in.
    let requests = request_mix(&p, true);
    let report = loadgen::run(
        &LoadgenOptions {
            addr: addr.clone(),
            connections: 4,
            requests: 400,
            qps: 0,
            faults: ClientFaultPlan {
                slow_loris_rate: 0.01,
                disconnect_rate: 0.02,
                oversize_rate: 0.01,
                garbage_rate: 0.03,
            },
            stall_ms: 500, // > read_timeout_ms, triggers slow-loris close
            oversize_bytes: 2 << 20,
            ..LoadgenOptions::default()
        },
        &requests,
    );

    // The panics were answered 500 and the request stream kept flowing.
    assert!(report.code_500 > 0, "chaos panics should surface as 500s");
    assert!(report.code_200 > 0, "normal requests should still serve");
    assert_eq!(report.code_other, 0, "no unexpected response codes");

    // Health is still live after the storm.
    let resp = send_line(&addr, r#"{"op":"health","id":"h1"}"#).expect("health after chaos");
    assert!(resp.contains("\"code\":200"), "health after chaos: {resp}");

    // Stats confirm supervision: every panic produces a restart (the
    // supervisor applies jittered backoff first, so poll briefly).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = send_line(&addr, r#"{"op":"stats","id":"st"}"#).expect("stats");
        let v = silentcert_serve::json::parse(stats.trim()).expect("stats parses");
        let get = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(-1.0);
        assert!(get("worker_panics") >= 1.0, "panics recorded: {stats}");
        if get("worker_restarts") >= get("worker_panics") && get("workers_alive") >= 3.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never caught up with restarts: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    let summary = handle.wait();
    assert!(summary.clean, "drain should be clean: {summary:?}");
    assert_eq!(summary.force_shed, 0);
    assert!(summary.worker_restarts >= summary.worker_panics);
    assert!(summary.journal_entries > 0, "journal captured the run");

    // The journal replays byte-identically against a fresh validator.
    let replayed = journal::replay(&journal_path, &make_validator()).expect("journal readable");
    assert_eq!(replayed.entries, summary.journal_entries);
    assert_eq!(replayed.mismatches, 0, "replay must be byte-identical");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn drain_sheds_backlog_at_deadline_instead_of_hanging() {
    let p = pki();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        deadline_ms: 300,
        drain_deadline_ms: 400,
        enable_chaos_ops: false,
        ..ServeConfig::default()
    };
    let handle = server::start(config, {
        let v = Validator::new(TrustStore::from_roots([p.root.clone()]));
        Arc::new(v)
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // A couple of classifications to prove liveness, then shutdown.
    let requests = request_mix(&p, false);
    for line in requests.iter().take(3) {
        let resp = send_line(&addr, line).expect("served");
        assert!(resp.contains("\"code\":200"), "{resp}");
    }
    // Shutdown frame over the wire (not just the handle API).
    let resp = send_line(&addr, r#"{"op":"shutdown","id":"bye"}"#).expect("shutdown ack");
    assert!(resp.contains("\"draining\":true"), "{resp}");

    // New classification work is refused while draining.
    if let Some(resp) = send_line(&addr, &requests[0]) {
        assert!(resp.contains("\"code\":503"), "shed while draining: {resp}");
    }

    let summary = handle.wait();
    assert!(summary.clean, "empty backlog drains cleanly: {summary:?}");
}
