//! End-to-end kill-resilience smoke test (the PR's acceptance check).
//!
//! Drives a live daemon over real sockets with the chaos loadgen —
//! malformed frames, oversize frames, mid-frame disconnects, and
//! injected worker panics — and asserts the supervision story holds:
//! the daemon sheds rather than collapses, restarts every panicked
//! worker, keeps answering `health` throughout, drains cleanly on
//! shutdown, and leaves a journal that replays to byte-identical
//! classification results.

use silentcert_crypto::sig::{KeyPair, SimKeyPair};
use silentcert_serve::loadgen::{self, ClientFaultPlan, LoadgenOptions};
use silentcert_serve::{journal, server, BreakerConfig, ServeConfig};
use silentcert_validate::{TrustStore, Validator};
use silentcert_x509::{Certificate, CertificateBuilder, Name, Time};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn key(seed: &str) -> KeyPair {
    KeyPair::Sim(SimKeyPair::from_seed(seed.as_bytes()))
}

fn years(from: i32, to: i32) -> (Time, Time) {
    (
        Time::from_ymd(from, 1, 1).unwrap(),
        Time::from_ymd(to, 1, 1).unwrap(),
    )
}

struct Pki {
    root: Certificate,
    intermediate: Certificate,
    intermediate_key: KeyPair,
}

fn pki() -> Pki {
    let root_key = key("smoke-root");
    let (nb, na) = years(2000, 2040);
    let root = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("Smoke Root CA"))
        .validity(nb, na)
        .ca(None)
        .self_signed(&root_key);
    let intermediate_key = key("smoke-intermediate");
    let intermediate = CertificateBuilder::new()
        .serial_u64(2)
        .subject(Name::with_common_name("Smoke Intermediate CA"))
        .issuer(root.subject.clone())
        .public_key(intermediate_key.public())
        .validity(nb, na)
        .ca(Some(0))
        .sign_with(&root_key);
    Pki {
        root,
        intermediate,
        intermediate_key,
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// A representative request mix: valid chains, expired leaves,
/// self-signed certs, garbage DER, and (optionally) chaos panics.
fn request_mix(p: &Pki, chaos_panics: bool) -> Vec<String> {
    let mut lines = Vec::new();
    let inter_hex = hex(p.intermediate.to_der());
    for i in 0..8u64 {
        let leaf_key = key(&format!("leaf-{i}"));
        let (nb, na) = years(2013, 2015);
        let leaf = CertificateBuilder::new()
            .serial_u64(100 + i)
            .subject(Name::with_common_name(&format!("site{i}.example")))
            .issuer(p.intermediate.subject.clone())
            .public_key(leaf_key.public())
            .validity(nb, na)
            .sign_with(&p.intermediate_key);
        lines.push(format!(
            r#"{{"op":"classify","id":"v{i}","cert":"{}","chain":["{inter_hex}"]}}"#,
            hex(leaf.to_der())
        ));
        // Same leaf without its chain (incomplete-chain classification).
        lines.push(format!(
            r#"{{"op":"validate","id":"n{i}","cert":"{}"}}"#,
            hex(leaf.to_der())
        ));
    }
    for i in 0..4u64 {
        let ss_key = key(&format!("self-{i}"));
        let (nb, na) = years(2010, 2030);
        let ss = CertificateBuilder::new()
            .serial_u64(200 + i)
            .subject(Name::with_common_name(&format!("device{i}.local")))
            .validity(nb, na)
            .self_signed(&ss_key);
        lines.push(format!(
            r#"{{"op":"classify","id":"s{i}","cert":"{}"}}"#,
            hex(ss.to_der())
        ));
    }
    // Garbage DER still classifies (as a parse error) rather than erroring.
    lines.push(r#"{"op":"classify","id":"g0","cert":"deadbeef"}"#.to_string());
    if chaos_panics {
        for i in 0..3 {
            lines.push(format!(r#"{{"op":"chaos_panic","id":"p{i}"}}"#));
        }
    }
    lines
}

fn send_line(addr: &str, line: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).ok()?;
    Some(resp)
}

#[test]
fn daemon_survives_chaos_and_drains_to_a_replayable_journal() {
    let p = pki();
    let journal_path =
        std::env::temp_dir().join(format!("silentcert-smoke-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let make_validator = || {
        let mut v = Validator::new(TrustStore::from_roots([p.root.clone()]));
        v.add_intermediate(&p.intermediate);
        Arc::new(v)
    };

    let config = ServeConfig {
        workers: 3,
        queue_capacity: 64,
        read_timeout_ms: 200, // fast slow-loris detection for the test
        deadline_ms: 2_000,
        journal_path: Some(journal_path.clone()),
        enable_chaos_ops: true,
        breaker: BreakerConfig {
            // Keep the breaker from tripping on the injected panics: this
            // test is about supervision; breaker behaviour is proptested.
            max_error_rate: 0.95,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = server::start(config, make_validator()).expect("bind");
    let addr = handle.addr().to_string();

    // Health answers before any load.
    let resp = send_line(&addr, r#"{"op":"health","id":"h0"}"#).expect("health up");
    assert!(resp.contains("\"code\":200"), "health before load: {resp}");

    // Chaos load: transport faults + chaos_panic frames mixed in.
    let requests = request_mix(&p, true);
    let report = loadgen::run(
        &LoadgenOptions {
            addr: addr.clone(),
            connections: 4,
            requests: 400,
            qps: 0,
            faults: ClientFaultPlan {
                slow_loris_rate: 0.01,
                disconnect_rate: 0.02,
                oversize_rate: 0.01,
                garbage_rate: 0.03,
            },
            stall_ms: 500, // > read_timeout_ms, triggers slow-loris close
            oversize_bytes: 2 << 20,
            ..LoadgenOptions::default()
        },
        &requests,
    );

    // The panics were answered 500 and the request stream kept flowing.
    assert!(report.code_500 > 0, "chaos panics should surface as 500s");
    assert!(report.code_200 > 0, "normal requests should still serve");
    assert_eq!(report.code_other, 0, "no unexpected response codes");

    // Health is still live after the storm.
    let resp = send_line(&addr, r#"{"op":"health","id":"h1"}"#).expect("health after chaos");
    assert!(resp.contains("\"code\":200"), "health after chaos: {resp}");

    // Stats confirm supervision: every panic produces a restart (the
    // supervisor applies jittered backoff first, so poll briefly).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = send_line(&addr, r#"{"op":"stats","id":"st"}"#).expect("stats");
        let v = silentcert_serve::json::parse(stats.trim()).expect("stats parses");
        let get = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(-1.0);
        assert!(get("worker_panics") >= 1.0, "panics recorded: {stats}");
        if get("worker_restarts") >= get("worker_panics") && get("workers_alive") >= 3.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never caught up with restarts: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    let summary = handle.wait();
    assert!(summary.clean, "drain should be clean: {summary:?}");
    assert_eq!(summary.force_shed, 0);
    assert!(summary.worker_restarts >= summary.worker_panics);
    assert!(summary.journal_entries > 0, "journal captured the run");

    // The journal replays byte-identically against a fresh validator.
    let replayed = journal::replay(&journal_path, &make_validator()).expect("journal readable");
    assert_eq!(replayed.entries, summary.journal_entries);
    assert_eq!(replayed.mismatches, 0, "replay must be byte-identical");

    let _ = std::fs::remove_file(&journal_path);
}

/// Minimal Prometheus text-format check: every sample line is
/// `name[{labels}] value`, every series name was declared by a
/// preceding `# TYPE`, and each histogram's `+Inf` bucket equals its
/// `_count`. Returns the parsed samples.
fn check_prometheus(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut typed = std::collections::BTreeSet::new();
    let mut samples = std::collections::BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("type name");
            let kind = parts.next().expect("type kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE: {line}"
            );
            typed.insert(name.to_string());
            continue;
        }
        assert!(!line.is_empty(), "blank line in exposition");
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        let base = series.split('{').next().unwrap();
        let declared = typed.contains(base)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                base.strip_suffix(suffix)
                    .is_some_and(|stem| typed.contains(stem))
            });
        assert!(declared, "sample without TYPE declaration: {line}");
        samples.insert(series.to_string(), value);
    }
    for (series, value) in &samples {
        if let Some(stem) = series
            .split('{')
            .next()
            .unwrap()
            .strip_suffix("_bucket")
            .filter(|_| series.contains("le=\"+Inf\""))
        {
            let count = samples
                .get(&format!("{stem}_count"))
                .unwrap_or_else(|| panic!("{stem} has buckets but no _count"));
            assert_eq!(value, count, "{series} != {stem}_count");
        }
    }
    samples
}

/// The PR's observability acceptance check: a chaos run against a
/// shedding daemon must yield a `metrics` verb whose Prometheus
/// exposition parses and carries non-zero shed and latency series,
/// whose JSON snapshot folds into the loadgen report, and whose cells
/// agree with the legacy `stats` verb.
#[test]
fn chaos_loadgen_yields_parseable_prometheus_metrics() {
    let p = pki();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2, // force queue_full sheds under 8 connections
        deadline_ms: 2_000,
        enable_chaos_ops: false,
        breaker: BreakerConfig {
            max_error_rate: 0.95, // sheds are 503s, not breaker trips
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = server::start(config, {
        let mut v = Validator::new(TrustStore::from_roots([p.root.clone()]));
        v.add_intermediate(&p.intermediate);
        Arc::new(v)
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let requests = request_mix(&p, false);
    let report = loadgen::run(
        &LoadgenOptions {
            addr: addr.clone(),
            connections: 8,
            requests: 400,
            faults: ClientFaultPlan {
                garbage_rate: 0.02,
                ..ClientFaultPlan::default()
            },
            ..LoadgenOptions::default()
        },
        &requests,
    );
    assert!(report.code_503 > 0, "tiny queue never shed: {report:?}");
    assert!(report.code_200 > 0, "{report:?}");

    // The loadgen report folded the daemon's JSON snapshot in.
    let folded = report.daemon_metrics.as_deref().expect("daemon_metrics");
    let snap = silentcert_serve::json::parse(folded).expect("snapshot parses");
    for key in [
        "silentcert_serve_queue_depth",
        "silentcert_serve_queue_capacity",
        "silentcert_serve_accepted_total",
        "silentcert_serve_deadline_expired_total",
        "silentcert_serve_worker_panics_total",
        "silentcert_serve_breaker_state",
        "silentcert_serve_breaker_transitions_total{to=\"open\"}",
    ] {
        assert!(snap.get(key).is_some(), "snapshot missing {key}: {folded}");
    }
    let latency = snap
        .get("silentcert_serve_request_latency_ms")
        .expect("latency histogram");
    for stat in ["count", "p50", "p95", "p99"] {
        assert!(latency.get(stat).is_some(), "latency missing {stat}");
    }
    assert!(
        latency.get("count").and_then(|v| v.as_f64()).unwrap() > 0.0,
        "no latencies recorded"
    );

    // Prometheus exposition over the same socket protocol.
    let resp = send_line(&addr, r#"{"op":"metrics","id":"m","format":"prometheus"}"#)
        .expect("metrics answered");
    let v = silentcert_serve::json::parse(resp.trim()).expect("response parses");
    let exposition = v
        .get("exposition")
        .and_then(|e| e.as_str())
        .expect("exposition field");
    let samples = check_prometheus(exposition);
    let shed: f64 = samples
        .iter()
        .filter(|(k, _)| k.starts_with("silentcert_serve_shed_total"))
        .map(|(_, v)| v)
        .sum();
    assert!(shed > 0.0, "shed series zero despite 503s");
    assert!(
        samples["silentcert_serve_request_latency_ms_count"] > 0.0,
        "latency histogram empty"
    );
    assert!(samples.contains_key("silentcert_serve_queue_depth"));

    // The legacy stats verb reads the same cells.
    let stats = send_line(&addr, r#"{"op":"stats","id":"st"}"#).expect("stats");
    let sv = silentcert_serve::json::parse(stats.trim()).expect("stats parses");
    assert_eq!(
        sv.get("served_ok").and_then(|x| x.as_f64()).unwrap(),
        samples["silentcert_serve_served_ok_total"],
        "stats and metrics disagree: {stats}"
    );

    handle.shutdown();
    let summary = handle.wait();
    assert!(summary.clean, "{summary:?}");
}

#[test]
fn drain_sheds_backlog_at_deadline_instead_of_hanging() {
    let p = pki();
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        deadline_ms: 300,
        drain_deadline_ms: 400,
        enable_chaos_ops: false,
        ..ServeConfig::default()
    };
    let handle = server::start(config, {
        let v = Validator::new(TrustStore::from_roots([p.root.clone()]));
        Arc::new(v)
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // A couple of classifications to prove liveness, then shutdown.
    let requests = request_mix(&p, false);
    for line in requests.iter().take(3) {
        let resp = send_line(&addr, line).expect("served");
        assert!(resp.contains("\"code\":200"), "{resp}");
    }
    // Shutdown frame over the wire (not just the handle API).
    let resp = send_line(&addr, r#"{"op":"shutdown","id":"bye"}"#).expect("shutdown ack");
    assert!(resp.contains("\"draining\":true"), "{resp}");

    // New classification work is refused while draining.
    if let Some(resp) = send_line(&addr, &requests[0]) {
        assert!(resp.contains("\"code\":503"), "shed while draining: {resp}");
    }

    let summary = handle.wait();
    assert!(summary.clean, "empty backlog drains cleanly: {summary:?}");
}
