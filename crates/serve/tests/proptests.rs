//! Property-based tests for the daemon's two safety-critical state
//! machines: the circuit breaker (never serves while open, always probes
//! when half-open) and the bounded queue (depth can never exceed
//! capacity, even under concurrent producers).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use silentcert_serve::{Admission, BoundedQueue, BreakerConfig, BreakerState, CircuitBreaker};

fn config() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        min_samples: 4,
        max_error_rate: 0.5,
        latency_slo_ms: 100,
        max_slow_rate: 0.9,
        open_cooldown_ms: 500,
        half_open_probes: 2,
    }
}

proptest! {
    /// Drive the breaker with an arbitrary interleaving of admit /
    /// record / cancel calls under a monotone clock and check its
    /// admission contract against a shadow model:
    ///
    /// - **Open before cooldown** sheds every request and stays open.
    /// - **Open after cooldown** always admits (the mandatory probe)
    ///   and becomes half-open.
    /// - **Half-open** admits at most `half_open_probes` outstanding
    ///   probe slots (cancel releases one) and sheds the rest.
    #[test]
    fn breaker_never_serves_open_and_always_probes_half_open(
        ops in proptest::collection::vec(
            (0u8..4, 1u64..200, any::<bool>(), 0u64..250),
            1..200,
        ),
    ) {
        let cfg = config();
        let mut b = CircuitBreaker::new(config());
        let mut now = 0u64;
        // Shadow model: when the probe window opens, and how many
        // half-open probe slots are currently granted.
        let mut probe_at = 0u64;
        let mut granted = 0usize;
        for &(op, delta, ok, latency_ms) in &ops {
            now += delta;
            match op {
                // Two admit variants so admissions dominate the mix.
                0 | 1 => {
                    let before = b.state();
                    let adm = b.admit(now);
                    match before {
                        BreakerState::Open if now < probe_at => {
                            prop_assert_eq!(adm, Admission::Shed,
                                "open breaker served during cooldown");
                            prop_assert_eq!(b.state(), BreakerState::Open);
                        }
                        BreakerState::Open => {
                            prop_assert_eq!(adm, Admission::Admit,
                                "breaker refused the first probe after cooldown");
                            prop_assert_eq!(b.state(), BreakerState::HalfOpen);
                            granted = 1;
                        }
                        BreakerState::HalfOpen => {
                            if granted < cfg.half_open_probes {
                                prop_assert_eq!(adm, Admission::Admit);
                                granted += 1;
                            } else {
                                prop_assert_eq!(adm, Admission::Shed,
                                    "admitted past the probe budget");
                            }
                            prop_assert!(granted <= cfg.half_open_probes);
                        }
                        BreakerState::Closed => {
                            prop_assert_eq!(adm, Admission::Admit);
                        }
                    }
                }
                2 => {
                    let trips_before = b.trips;
                    b.record(now, ok, latency_ms);
                    if b.trips > trips_before {
                        prop_assert_eq!(b.state(), BreakerState::Open);
                        probe_at = now + cfg.open_cooldown_ms;
                    }
                }
                _ => {
                    let before = b.state();
                    b.cancel();
                    if before == BreakerState::HalfOpen && granted > 0 {
                        granted -= 1;
                    }
                }
            }
        }
    }

    /// Concurrent producers hammer `try_push` while a consumer drains:
    /// the observed high-water mark never exceeds capacity, rejected
    /// items come back intact, and every accepted item is popped
    /// exactly once.
    #[test]
    fn queue_never_exceeds_capacity_under_concurrent_producers(
        capacity in 1usize..8,
        producers in 1usize..5,
        per_producer in 1usize..40,
    ) {
        let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(capacity));
        let accepted = AtomicUsize::new(0);
        let popped = std::thread::scope(|s| {
            let consumer = {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut n = 0usize;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            };
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    let accepted = &accepted;
                    s.spawn(move || {
                        for i in 0..per_producer {
                            let item = p * 10_000 + i;
                            match q.try_push(item) {
                                Ok(()) => {
                                    accepted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    // The shed item is handed back intact.
                                    let inner = match e {
                                        silentcert_serve::PushError::Full(v) => v,
                                        silentcert_serve::PushError::Closed(v) => v,
                                    };
                                    assert_eq!(inner, item);
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            q.close();
            consumer.join().unwrap()
        });
        prop_assert!(q.peak() <= capacity,
            "peak depth {} exceeded capacity {}", q.peak(), capacity);
        prop_assert_eq!(popped, accepted.load(Ordering::Relaxed),
            "accepted items must be consumed exactly once");
        prop_assert!(q.is_empty());
    }
}
