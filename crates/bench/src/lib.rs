//! Shared fixtures for the silentcert benchmarks.
//!
//! Every experiment bench runs against one lazily-simulated tiny-scale
//! world so that Criterion measures the *analysis* stage, not repeated
//! simulation.

use silentcert_core::dataset::{CertId, Dataset, Lifetime};
use silentcert_core::dedup::{self, DedupConfig};
use silentcert_sim::{simulate, ScaleConfig, SimOutput};
use std::sync::OnceLock;

/// The shared simulated world.
pub fn world() -> &'static SimOutput {
    static WORLD: OnceLock<SimOutput> = OnceLock::new();
    WORLD.get_or_init(|| simulate(&ScaleConfig::tiny()))
}

/// The shared dataset.
pub fn dataset() -> &'static Dataset {
    &world().dataset
}

/// Precomputed lifetimes.
pub fn lifetimes() -> &'static [Option<Lifetime>] {
    static LT: OnceLock<Vec<Option<Lifetime>>> = OnceLock::new();
    LT.get_or_init(|| dataset().lifetimes())
}

/// Deduped invalid certificates (the linking candidates).
pub fn candidates() -> &'static [CertId] {
    static C: OnceLock<Vec<CertId>> = OnceLock::new();
    C.get_or_init(|| {
        let d = dataset();
        let dd = dedup::analyze(d, DedupConfig::default());
        d.cert_ids()
            .filter(|&c| !d.cert(c).is_valid() && dd.is_unique(c))
            .collect()
    })
}
