//! Ablation benchmarks for the methodology's design choices (DESIGN.md
//! §4): each measures the alternative configurations side by side so both
//! cost and outcome shifts are visible in one report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silentcert_bench::{candidates, dataset, lifetimes};
use silentcert_core::{dedup, evaluate, linking};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// §6.3.2: the pairwise lifetime-overlap allowance (paper value: 1 scan).
fn ablate_overlap_threshold(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("ablate/overlap_threshold");
    for max_overlap in [0u32, 1, 2] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_overlap),
            &max_overlap,
            |b, &m| {
                let cfg = linking::LinkConfig {
                    max_overlap_scans: m,
                };
                b.iter(|| {
                    evaluate::iterative_link(
                        black_box(d),
                        lifetimes(),
                        candidates(),
                        &linking::LinkField::ACCEPTED,
                        cfg,
                    )
                })
            },
        );
    }
    g.finish();
}

/// §6.2: the per-scan IP-count uniqueness threshold (paper value: 2).
fn ablate_dedup_threshold(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("ablate/dedup_threshold");
    for max_ips in [1u32, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(max_ips), &max_ips, |b, &m| {
            let cfg = dedup::DedupConfig {
                max_ips_per_scan: m,
                ..dedup::DedupConfig::default()
            };
            b.iter(|| dedup::analyze(black_box(d), cfg))
        });
    }
    g.finish();
}

/// §6.2: the "exactly two IPs in every scan" exception on/off.
fn ablate_exception_rule(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("ablate/exception_rule");
    for on in [true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            let cfg = dedup::DedupConfig {
                every_scan_exception: on,
                ..dedup::DedupConfig::default()
            };
            b.iter(|| dedup::analyze(black_box(d), cfg))
        });
    }
    g.finish();
}

/// §6.4.3: iterative linking in AS-consistency order vs reversed.
fn ablate_field_order(c: &mut Criterion) {
    let d = dataset();
    let mut reversed = linking::LinkField::ACCEPTED;
    reversed.reverse();
    let mut g = c.benchmark_group("ablate/field_order");
    for (label, order) in [
        ("paper", linking::LinkField::ACCEPTED),
        ("reversed", reversed),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, order| {
            b.iter(|| {
                evaluate::iterative_link(
                    black_box(d),
                    lifetimes(),
                    candidates(),
                    order,
                    linking::LinkConfig::default(),
                )
            })
        });
    }
    g.finish();
}

/// §6.4.3: including the rejected date fields.
fn ablate_rejected_fields(c: &mut Criterion) {
    let d = dataset();
    let mut with_dates: Vec<linking::LinkField> = linking::LinkField::ACCEPTED.to_vec();
    with_dates.push(linking::LinkField::NotBefore);
    with_dates.push(linking::LinkField::NotAfter);
    with_dates.push(linking::LinkField::IssuerSerial);
    let mut g = c.benchmark_group("ablate/rejected_fields");
    for (label, order) in [
        ("accepted_only", linking::LinkField::ACCEPTED.to_vec()),
        ("with_dates", with_dates),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, order| {
            b.iter(|| {
                evaluate::iterative_link(
                    black_box(d),
                    lifetimes(),
                    candidates(),
                    order,
                    linking::LinkConfig::default(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = configured();
    targets = ablate_overlap_threshold, ablate_dedup_threshold, ablate_exception_rule,
        ablate_field_order, ablate_rejected_fields
}
criterion_main!(ablations);
