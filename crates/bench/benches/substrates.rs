//! Microbenchmarks for the substrate crates: hashing, big-integer
//! arithmetic, RSA, DER encode/parse, longest-prefix matching, and ECDF
//! construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use silentcert_crypto::entropy::XorShift64;
use silentcert_crypto::sig::{KeyPair, SimKeyPair};
use silentcert_crypto::{sha256, BigUint, RsaKeyPair};
use silentcert_net::{AsNumber, Ipv4, Prefix, PrefixTable};
use silentcert_stats::Ecdf;
use silentcert_x509::{Certificate, CertificateBuilder, Name, Time};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_hashing(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    let mut g = c.benchmark_group("crypto/sha256");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("64KiB", |b| b.iter(|| sha256(black_box(&data))));
    g.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let mut rng = XorShift64::new(7);
    let base = silentcert_crypto::prime::random_below(&BigUint::one().shl(512), &mut rng);
    let exp = silentcert_crypto::prime::random_below(&BigUint::one().shl(512), &mut rng);
    let mut modulus = silentcert_crypto::prime::random_below(&BigUint::one().shl(512), &mut rng);
    modulus.set_bit(511);
    modulus.set_bit(0);
    c.bench_function("crypto/modpow_512", |b| {
        b.iter(|| black_box(&base).modpow(black_box(&exp), black_box(&modulus)))
    });
    let a = base.mul(&exp);
    c.bench_function("crypto/div_rem_1024_by_512", |b| {
        b.iter(|| black_box(&a).div_rem(black_box(&modulus)))
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = XorShift64::new(11);
    let kp = RsaKeyPair::generate(512, &mut rng);
    let msg = b"benchmark message";
    let sig = kp.sign(msg);
    c.bench_function("crypto/rsa512_sign", |b| {
        b.iter(|| black_box(&kp).sign(black_box(msg)))
    });
    c.bench_function("crypto/rsa512_verify", |b| {
        b.iter(|| black_box(&kp.public).verify(black_box(msg), black_box(&sig)))
    });
    c.bench_function("crypto/sim_sign_verify", |b| {
        let sk = SimKeyPair::from_seed(b"bench");
        let kp = KeyPair::Sim(sk);
        b.iter(|| {
            let sig = kp.sign(black_box(msg));
            kp.public().verify(msg, &sig)
        })
    });
}

fn sample_cert() -> Certificate {
    let key = KeyPair::Sim(SimKeyPair::from_seed(b"bench-cert"));
    CertificateBuilder::new()
        .serial_u64(0xdead_beef)
        .subject(Name::with_common_name("fritz.box"))
        .validity(
            Time::from_ymd(2013, 1, 1).unwrap(),
            Time::from_ymd(2033, 1, 1).unwrap(),
        )
        .extension(silentcert_x509::Extension::SubjectAltName(vec![
            silentcert_x509::GeneralName::Dns("fritz.fonwlan.box".into()),
        ]))
        .self_signed(&key)
}

fn bench_x509(c: &mut Criterion) {
    let cert = sample_cert();
    let der = cert.to_der().to_vec();
    c.bench_function("x509/build_and_sign", |b| b.iter(sample_cert));
    c.bench_function("x509/parse", |b| {
        b.iter(|| Certificate::from_der(black_box(&der)).unwrap())
    });
    c.bench_function("x509/fingerprint", |b| {
        b.iter(|| black_box(&cert).fingerprint())
    });
}

fn bench_lpm(c: &mut Criterion) {
    let mut table = PrefixTable::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for i in 0..10_000u32 {
        let base = Ipv4(rng.gen::<u32>());
        let len = rng.gen_range(8..=24);
        table.announce(Prefix::new(base, len), AsNumber(i));
    }
    let probes: Vec<Ipv4> = (0..1024).map(|_| Ipv4(rng.gen())).collect();
    let mut g = c.benchmark_group("net/lpm");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lookup_1024", |b| {
        b.iter(|| {
            for &ip in &probes {
                black_box(table.lookup_asn(ip));
            }
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let values: Vec<f64> = (0..100_000).map(|_| rng.gen_range(-10.0..1e6)).collect();
    c.bench_function("stats/ecdf_build_100k", |b| {
        b.iter(|| Ecdf::from_values(black_box(values.clone())))
    });
    let ecdf = Ecdf::from_values(values);
    c.bench_function("stats/ecdf_quantiles", |b| {
        b.iter(|| {
            for p in [0.01, 0.25, 0.5, 0.9, 0.99] {
                black_box(ecdf.quantile(p));
            }
        })
    });
}

criterion_group! {
    name = substrates;
    config = configured();
    targets = bench_hashing, bench_bigint, bench_rsa, bench_x509, bench_lpm, bench_stats
}
criterion_main!(substrates);
