//! One benchmark per paper table/figure: each measures the analysis stage
//! that regenerates that result (see DESIGN.md's per-experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use silentcert_bench::{candidates, dataset, lifetimes, world};
use silentcert_core::{compare, dedup, devices, evaluate, linking, tracking};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_simulation(c: &mut Criterion) {
    // §4.1: generating one scan corpus (tiny scale) end to end.
    c.bench_function("simulate/tiny_world", |b| {
        b.iter(|| silentcert_sim::simulate(black_box(&silentcert_sim::ScaleConfig::tiny())))
    });
}

fn bench_headline(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("headline/para4_counts", |b| {
        b.iter(|| compare::headline(black_box(d)))
    });
}

fn bench_fig1_blacklist(c: &mut Criterion) {
    let d = dataset();
    let pairs = compare::overlap_days(d);
    c.bench_function("fig1/slash8_uniqueness", |b| {
        let (su, sr) = pairs[0];
        b.iter(|| compare::scan_uniqueness_by_slash8(black_box(d), su, sr))
    });
    c.bench_function("fig1/blacklist_attribution", |b| {
        b.iter(|| compare::blacklist_attribution(black_box(d), black_box(&pairs)))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig2/per_scan_counts", |b| {
        b.iter(|| compare::per_scan_counts(black_box(d)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig3/validity_periods", |b| {
        b.iter(|| compare::validity_periods(black_box(d)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig4/lifetime_ecdfs", |b| {
        b.iter(|| compare::lifetime_ecdfs(black_box(d), black_box(lifetimes())))
    });
    c.bench_function("fig4/lifetime_index", |b| {
        b.iter(|| black_box(d).lifetimes())
    });
}

fn bench_fig5(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig5/notbefore_delta", |b| {
        b.iter(|| compare::notbefore_delta(black_box(d), black_box(lifetimes())))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig6/key_sharing", |b| {
        b.iter(|| compare::key_sharing(black_box(d)))
    });
}

fn bench_table1(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("table1/top_issuers", |b| {
        b.iter(|| compare::top_issuers(black_box(d), 5))
    });
    c.bench_function("para5_3/issuer_key_diversity", |b| {
        b.iter(|| compare::issuer_key_diversity(black_box(d)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig7/host_diversity", |b| {
        b.iter(|| compare::host_diversity(black_box(d)))
    });
}

fn bench_fig8_tables23(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig8/as_diversity", |b| {
        b.iter(|| compare::as_diversity(black_box(d)))
    });
    let ad = compare::as_diversity(d);
    c.bench_function("table2/as_type_breakdown", |b| {
        b.iter(|| compare::as_type_breakdown(black_box(d), black_box(&ad)))
    });
    c.bench_function("table3/top_ases", |b| {
        b.iter(|| compare::top_ases(black_box(d), black_box(&ad), 5))
    });
}

fn bench_table4(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("table4/device_type_breakdown", |b| {
        b.iter(|| devices::device_type_breakdown(black_box(d), 50))
    });
}

fn bench_dedup(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("para6_2/dedup", |b| {
        b.iter(|| dedup::analyze(black_box(d), dedup::DedupConfig::default()))
    });
}

fn bench_table5(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("table5/feature_uniqueness", |b| {
        b.iter(|| {
            linking::feature_uniqueness(
                black_box(d),
                black_box(candidates()),
                &linking::LinkField::ALL,
            )
        })
    });
}

fn bench_table6(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("table6/evaluate_fields", |b| {
        b.iter(|| {
            evaluate::evaluate_fields(
                black_box(d),
                black_box(lifetimes()),
                black_box(candidates()),
                &linking::LinkField::ALL,
                linking::LinkConfig::default(),
            )
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig10/iterative_link", |b| {
        b.iter(|| {
            evaluate::iterative_link(
                black_box(d),
                black_box(lifetimes()),
                black_box(candidates()),
                &linking::LinkField::ACCEPTED,
                linking::LinkConfig::default(),
            )
        })
    });
}

fn bench_tracking(c: &mut Criterion) {
    let d = dataset();
    let link = evaluate::iterative_link(
        d,
        lifetimes(),
        candidates(),
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let index = evaluate::ObsIndex::build(d);
    let ents = tracking::entities(&link);
    let span = d.scans.last().unwrap().day - d.scans.first().unwrap().day;
    let min_days = span * 3 / 5;
    c.bench_function("para7_2/trackable", |b| {
        b.iter(|| {
            tracking::trackable(
                black_box(d),
                black_box(lifetimes()),
                black_box(candidates()),
                black_box(&ents),
                black_box(&index),
                min_days,
            )
        })
    });
    c.bench_function("para7_3/movement", |b| {
        b.iter(|| {
            tracking::movement(
                black_box(d),
                black_box(&ents),
                black_box(&index),
                min_days,
                3,
            )
        })
    });
    c.bench_function("fig11/reassignment", |b| {
        b.iter(|| {
            tracking::reassignment(
                black_box(d),
                black_box(&ents),
                black_box(&index),
                min_days,
                4,
                0.75,
            )
        })
    });
    c.bench_function("truth/score_linking", |b| {
        b.iter(|| world().truth.score_linking(black_box(&link.groups)))
    });
}

criterion_group! {
    name = experiments;
    config = configured();
    targets = bench_simulation, bench_headline, bench_fig1_blacklist, bench_fig2, bench_fig3,
        bench_fig4, bench_fig5, bench_fig6, bench_table1, bench_fig7, bench_fig8_tables23,
        bench_table4, bench_dedup, bench_table5, bench_table6, bench_fig10, bench_tracking
}
criterion_main!(experiments);
