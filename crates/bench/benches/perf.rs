//! Before/after benchmarks for the performance architecture
//! (DESIGN.md §8): Montgomery modpow vs the legacy square-and-multiply
//! path, CRT vs full-exponent RSA signing, the probe-level scan runtime
//! serial vs parallel, and corpus classification serial vs parallel.
//!
//! `repro bench` produces the same comparisons as a machine-readable
//! `BENCH.json`; these exist so `cargo bench` tracks the same hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use silentcert_core::ingest::classify_parallel;
use silentcert_crypto::entropy::XorShift64;
use silentcert_crypto::{BigUint, RsaKeyPair};
use silentcert_sim::{export_corpus, run_scan, ScaleConfig, ScanOptions};
use silentcert_validate::{TrustStore, Validator};
use silentcert_x509::Certificate;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// A scan-sized scale that keeps one `run_scan` iteration sub-second.
fn scan_config() -> ScaleConfig {
    let mut config = ScaleConfig::tiny();
    config.n_devices = 80;
    config.n_websites = 30;
    config.umich_scans = 4;
    config.rapid7_scans = 2;
    config.overlap_days = 1;
    config
}

fn tempdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("silentcert-bench-{tag}-{}", std::process::id()))
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = XorShift64::new(7);
    let bits = 1024;
    let base = silentcert_crypto::prime::random_below(&BigUint::one().shl(bits), &mut rng);
    let exp = silentcert_crypto::prime::random_below(&BigUint::one().shl(bits), &mut rng);
    let mut modulus = silentcert_crypto::prime::random_below(&BigUint::one().shl(bits), &mut rng);
    modulus.set_bit(bits - 1);
    modulus.set_bit(0); // odd: Montgomery-eligible
    c.bench_function("perf/modpow_1024_legacy", |b| {
        b.iter(|| black_box(&base).modpow_legacy(black_box(&exp), black_box(&modulus)))
    });
    c.bench_function("perf/modpow_1024_montgomery", |b| {
        b.iter(|| black_box(&base).modpow(black_box(&exp), black_box(&modulus)))
    });
}

fn bench_sign(c: &mut Criterion) {
    let mut rng = XorShift64::new(11);
    let kp = RsaKeyPair::generate(1024, &mut rng);
    let msg = b"benchmark message";
    c.bench_function("perf/rsa1024_sign_baseline", |b| {
        b.iter(|| black_box(&kp).sign_baseline(black_box(msg)))
    });
    c.bench_function("perf/rsa1024_sign_crt", |b| {
        b.iter(|| black_box(&kp).sign(black_box(msg)))
    });
}

fn bench_run_scan(c: &mut Criterion) {
    let config = scan_config();
    let dir = tempdir("scan");
    c.bench_function("perf/run_scan_serial", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            run_scan(
                &config,
                &dir,
                &ScanOptions {
                    threads: 1,
                    ..ScanOptions::default()
                },
            )
            .expect("scan")
        })
    });
    c.bench_function("perf/run_scan_parallel", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            run_scan(&config, &dir, &ScanOptions::default()).expect("scan")
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_classification(c: &mut Criterion) {
    let config = scan_config();
    let dir = tempdir("classify");
    let _ = std::fs::remove_dir_all(&dir);
    export_corpus(&config, &dir).expect("export");
    let load = |f: &str| -> Vec<Certificate> {
        let pem = std::fs::read_to_string(dir.join(f)).expect("read pem");
        silentcert_x509::pem::pem_decode_all("CERTIFICATE", &pem)
            .expect("decode pem")
            .iter()
            .map(|der| Certificate::from_der(der).expect("parse cert"))
            .collect()
    };
    let certs = load("certs.pem");
    let roots = load("roots.pem");
    let _ = std::fs::remove_dir_all(&dir);
    let validator = Validator::new(TrustStore::from_roots(roots));
    c.bench_function("perf/classify_serial", |b| {
        b.iter(|| classify_parallel(black_box(&validator), black_box(&certs), 1))
    });
    c.bench_function("perf/classify_parallel", |b| {
        b.iter(|| classify_parallel(black_box(&validator), black_box(&certs), 0))
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_modpow, bench_sign, bench_run_scan, bench_classification
}
criterion_main!(benches);
