//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Supports structs with named fields (no generics), which is all this
//! workspace derives. Parsed by hand from the token stream — the offline
//! build has no `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility, find `struct <Name>`.
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute group.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize): expected a struct");

    // The next brace group holds the named fields.
    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize): expected named fields");

    let fields = field_names(body);

    let field_entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\", &self.{f} as &dyn ::serde::Serialize),"))
        .collect();
    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String, indent: usize) {{\n\
                 ::serde::write_struct(out, indent, &[{field_entries}]);\n\
             }}\n\
         }}"
    );
    impl_src
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Extract field names from the contents of a struct's brace group.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Optional `(crate)` / `(super)` restriction group.
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        let _ = tokens.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("derive(Serialize): unexpected token {other}"),
            }
        };
        fields.push(name);
        // Skip `: Type`, up to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}
