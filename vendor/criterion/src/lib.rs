//! Offline stand-in for `criterion`.
//!
//! Compiles the benchmark-harness API this workspace uses and, when run,
//! executes each benchmark body a handful of times with a coarse
//! wall-clock report. No statistics, plots, or baselines — the point is
//! that `cargo bench`/`cargo clippy --all-targets` build and the bench
//! bodies stay exercised.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded but only echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter(1024)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Criterion {
        run_one(self.iters, &id.to_string(), None, f);
        self
    }

    /// Upstream emits the final report here; the stand-in has nothing to do.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.parent.iters, &label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.parent.iters, &label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(iters: u32, label: &str, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iters).unwrap_or(Duration::ZERO);
    let tp_note = match tp {
        Some(Throughput::Bytes(n)) => format!(" ({n} bytes/iter)"),
        Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
        None => String::new(),
    };
    println!("bench {label}: {per_iter:?}/iter over {iters} iters{tp_note}");
}

/// Upstream-compatible: each group expands to a function running its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bench_function_runs() {
        Criterion::default().bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
