//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use: the
//! `proptest!` macro, `prop_assert*`, `prop_oneof!`, `any::<T>()`,
//! numeric-range and character-class-regex strategies, `Just`,
//! `prop_map`, and `proptest::collection::vec`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test name (fully deterministic, no persistence files) and
//! there is **no shrinking** — a failing case reports its inputs via the
//! assertion message and the case index instead.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 96 }
        }
    }

    /// The deterministic generator backing every strategy draw.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a stable string (the test's name), so every run of a
        /// given test explores the identical case sequence.
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// xoshiro256** step.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform usize in `[lo, hi]`.
        pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe face of [`Strategy`] for boxing.
    pub trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive candidates: {}",
                self.reason
            );
        }
    }

    /// `prop_oneof!` backing: uniform choice among boxed strategies.
    pub struct Union<V> {
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty : $u:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    assert!(span != 0, "empty range strategy");
                    self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as $u)
                        .wrapping_sub(*self.start() as $u)
                        .wrapping_add(1);
                    // span == 0 means the full domain: next_u64 is already uniform.
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    self.start().wrapping_add((rng.next_u64() % span as u64) as $t)
                }
            }
        )*};
    }
    int_range_strategies!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                          i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    /// Character-class regex strategies: the subset `[class]{m,n}` plus
    /// literal characters, e.g. `"[ -~]{0,120}"` or `"[0-9.]{1,18}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal char.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class in pattern")
                    + i;
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner)
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            // Optional {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition in pattern")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("bad repetition lower bound"),
                        b.parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = rng.size_in(lo, hi);
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(inner: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' {
                let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                assert!(lo <= hi, "inverted range in character class");
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        set.push(c);
                    }
                }
                i += 3;
            } else {
                set.push(inner[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Mostly ASCII with an occasional wider code point.
            match rng.below(4) {
                0 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a'),
                _ => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('b'),
            }
        }
    }

    impl<T: Arbitrary + std::fmt::Debug, const N: usize> Arbitrary for [T; N] {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary_value(rng))
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.size_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for ordered sets; like upstream, the size is a target —
    /// duplicate draws may yield a smaller set (never below one retry
    /// pass), so only the upper bound is guaranteed.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.size_in(self.size.lo, self.size.hi);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. See module docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, cfg.cases, msg);
                    }
                }
            }
        )*
    };
}

/// Skip the current case when its precondition does not hold. Upstream
/// re-draws a replacement case; the stand-in just moves on, which only
/// thins the case count slightly for rarely-false preconditions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Soft assertion: fails the current proptest case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u32..20, w in -4i64..=4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-4..=4).contains(&w));
        }

        #[test]
        fn vec_sizes_respected(bytes in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&bytes.len()));
        }

        #[test]
        fn pattern_strategy_matches_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), Just(5), 10i64..13].prop_map(|x| x * 2)) {
            prop_assert!([2, 10, 20, 22, 24].contains(&v), "{}", v);
        }
    }

    #[test]
    fn config_cases_honoured() {
        let cfg = ProptestConfig::with_cases(7);
        assert_eq!(cfg.cases, 7);
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
