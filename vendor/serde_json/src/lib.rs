//! Offline stand-in for `serde_json`: renders any vendored-serde
//! `Serialize` value as pretty JSON. Serialization is infallible here, but
//! the `Result` signature mirrors upstream so call sites stay unchanged.

use std::fmt;

/// Upstream-compatible error type; never actually produced.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as compact JSON. The stand-in keeps pretty layout's
/// token stream but strips the newline framing, which is valid JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // Whitespace outside strings is insignificant; the pretty printer only
    // emits its indentation right after '\n', so trimming line heads is safe
    // even when string values contain escaped newlines (those stay "\n").
    let mut out = String::with_capacity(pretty.len());
    for (i, line) in pretty.lines().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(line.trim_start());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_scalars() {
        assert_eq!(super::to_string_pretty(&5u32).unwrap(), "5");
        assert_eq!(super::to_string_pretty("hi").unwrap(), "\"hi\"");
    }
}
