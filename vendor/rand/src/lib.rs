//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: `StdRng`, the
//! `Rng`/`RngCore`/`SeedableRng` traits, and slice shuffling. The
//! generator is xoshiro256** seeded via SplitMix64 — statistically solid
//! and fully deterministic, which is all the simulator requires. Streams
//! differ from upstream `rand`, so absolute simulated values differ from
//! historical runs, but every distributional property is preserved.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    /// Byte-array seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (mirrors upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `inclusive` widens to `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty : $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                // Span as the unsigned twin; wrapping arithmetic handles
                // signed bounds. A full-domain inclusive range never occurs
                // in this workspace, so the +1 cannot overflow to zero span.
                let span = (high as $u).wrapping_sub(low as $u).wrapping_add(inclusive as $u);
                assert!(span != 0, "gen_range called with an empty range");
                let v = (rng.next_u64() % span as u64) as $u;
                low.wrapping_add(v as $t)
            }
        }
    )*};
}
uniform_int!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + (high - low) * unit
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // Compare against a 53-bit uniform draw; exact for p in {0.0, 1.0}.
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256**.
    ///
    /// Not the ChaCha12 generator upstream `StdRng` wraps, so numeric
    /// streams differ from upstream, but seeding and the trait surface
    /// match.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64();
                for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro's all-zero state is a fixed point; remix it away.
            if s == [0; 4] {
                let mut st = 0x5117_c3e7_0000_0001u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
