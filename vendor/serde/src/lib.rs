//! Offline stand-in for `serde`, scoped to what this workspace needs:
//! serializing plain data structs to pretty JSON via `serde_json`.
//!
//! Instead of serde's full `Serializer` abstraction, the trait renders
//! directly into a JSON string buffer; `serde_json::to_string_pretty` is
//! the only consumer. The `derive` feature re-exports a real proc-macro
//! derive for structs with named fields.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A value that can render itself as JSON.
///
/// `indent` is the nesting depth of the value's context; implementations
/// only use it when they open a multi-line container.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String, indent: usize);
}

macro_rules! serialize_display {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Inf literals.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        f64::from(*self).serialize_json(out, indent);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        (**self).serialize_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.serialize_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_newline_indent(out, indent + 1);
            v.serialize_json(out, indent + 1);
        }
        push_newline_indent(out, indent);
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_slice().serialize_json(out, indent);
    }
}

/// Render a struct as a JSON object. Used by the `Serialize` derive.
pub fn write_struct(out: &mut String, indent: usize, fields: &[(&str, &dyn Serialize)]) {
    if fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_newline_indent(out, indent + 1);
        write_json_string(out, name);
        out.push_str(": ");
        value.serialize_json(out, indent + 1);
    }
    push_newline_indent(out, indent);
    out.push('}');
}

fn push_newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        let mut out = String::new();
        42u64.serialize_json(&mut out, 0);
        assert_eq!(out, "42");
        let mut out = String::new();
        "a \"b\"\n".serialize_json(&mut out, 0);
        assert_eq!(out, r#""a \"b\"\n""#);
        let mut out = String::new();
        f64::NAN.serialize_json(&mut out, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn structs_render_pretty() {
        let mut out = String::new();
        write_struct(&mut out, 0, &[("a", &1u32), ("b", &"x")]);
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": \"x\"\n}");
    }

    #[test]
    fn vectors_nest() {
        let mut out = String::new();
        vec![1u8, 2].serialize_json(&mut out, 0);
        assert_eq!(out, "[\n  1,\n  2\n]");
    }
}
