//! Facade crate re-exporting the silentcert public API.
//!
//! The actual implementation lives in the workspace member crates; this
//! crate exists so downstream users can depend on a single `silentcert`
//! package and so the repository's `examples/` and `tests/` have a home.
//!
//! ```
//! use silentcert::crypto::sig::{KeyPair, SimKeyPair};
//! use silentcert::validate::{TrustStore, Validator};
//! use silentcert::x509::{CertificateBuilder, Name, Time};
//!
//! // A router's self-signed certificate, classified the way §4.2 of the
//! // paper classifies it.
//! let key = KeyPair::Sim(SimKeyPair::from_seed(b"router"));
//! let cert = CertificateBuilder::new()
//!     .serial_u64(1)
//!     .subject(Name::with_common_name("192.168.1.1"))
//!     .validity(
//!         Time::from_ymd(2013, 1, 1).unwrap(),
//!         Time::from_ymd(2033, 1, 1).unwrap(),
//!     )
//!     .self_signed(&key);
//! let validator = Validator::new(TrustStore::new());
//! assert_eq!(validator.classify(&cert, &[]).to_string(), "invalid: self-signed");
//! ```

pub use silentcert_asn1 as asn1;
pub use silentcert_core as core;
pub use silentcert_crypto as crypto;
pub use silentcert_net as net;
pub use silentcert_sim as sim;
pub use silentcert_stats as stats;
pub use silentcert_validate as validate;
pub use silentcert_x509 as x509;
