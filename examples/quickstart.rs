//! Quickstart: build, sign, serialize, parse, and validate certificates.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use silentcert::crypto::sig::{KeyPair, SimKeyPair};
use silentcert::crypto::{EntropySource, RsaKeyPair, XorShift64};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::pem::pem_encode;
use silentcert::x509::{Certificate, CertificateBuilder, Name, Time};

fn main() {
    // 1. A self-signed device certificate, the way a home router makes one
    //    at first boot. `Sim` keys are the fast deterministic scheme the
    //    simulator uses; swap in `KeyPair::Rsa` for real RSA (below).
    let device_key = KeyPair::Sim(SimKeyPair::from_seed(b"my-router"));
    let device_cert = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("192.168.1.1"))
        .validity(
            Time::from_ymd(2013, 6, 1).unwrap(),
            Time::from_ymd(2033, 6, 1).unwrap(), // 20 years, like the paper's median
        )
        .self_signed(&device_key);

    println!("device certificate:");
    println!("  subject:     {}", device_cert.subject);
    println!("  issuer:      {}", device_cert.issuer);
    println!(
        "  validity:    {} … {}",
        device_cert.not_before, device_cert.not_after
    );
    println!("  period:      {} days", device_cert.validity_period_days());
    println!("  fingerprint: {}", device_cert.fingerprint());
    println!("  self-signed: {}", device_cert.is_self_signed());

    // 2. DER/PEM round-trip.
    let der = device_cert.to_der();
    let parsed = Certificate::from_der(der).expect("round-trip");
    assert_eq!(parsed, device_cert);
    println!("\nPEM:\n{}", pem_encode("CERTIFICATE", der));

    // 3. A real RSA-backed CA issuing a website certificate.
    let mut rng = XorShift64::new(42);
    let ca_key = KeyPair::Rsa(RsaKeyPair::generate(512, &mut rng));
    let _ = rng.next_u64();
    let ca_cert = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("Example Root CA"))
        .validity(
            Time::from_ymd(2010, 1, 1).unwrap(),
            Time::from_ymd(2035, 1, 1).unwrap(),
        )
        .ca(None)
        .self_signed(&ca_key);
    let site_key = KeyPair::Sim(SimKeyPair::from_seed(b"example.com"));
    let site_cert = CertificateBuilder::new()
        .serial_u64(4242)
        .subject(Name::with_common_name("example.com"))
        .issuer(ca_cert.subject.clone())
        .public_key(site_key.public())
        .validity(
            Time::from_ymd(2013, 1, 1).unwrap(),
            Time::from_ymd(2014, 2, 1).unwrap(),
        )
        .sign_with(&ca_key);

    // 4. Validate both with openssl-verify-style semantics.
    let validator = Validator::new(TrustStore::from_roots([ca_cert]));
    println!("website cert: {}", validator.classify(&site_cert, &[]));
    println!("device  cert: {}", validator.classify(&device_cert, &[]));
}
