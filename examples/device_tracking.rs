//! §7's application: track end-user devices across IP changes using only
//! the (invalid) certificates they serve, then inspect AS movement and
//! infer per-AS address-reassignment policies.
//!
//! ```sh
//! cargo run --release --example device_tracking
//! ```

use silentcert::core::dataset::CertId;
use silentcert::core::evaluate::ObsIndex;
use silentcert::core::{dedup, evaluate, linking, tracking};
use silentcert::sim::{simulate, ScaleConfig};
use silentcert::stats::table::{percent, thousands};

fn main() {
    let out = simulate(&ScaleConfig::tiny());
    let dataset = &out.dataset;
    let lifetimes = dataset.lifetimes();
    let dd = dedup::analyze(dataset, dedup::DedupConfig::default());
    let candidates: Vec<CertId> = dataset
        .cert_ids()
        .filter(|&c| !dataset.cert(c).is_valid() && dd.is_unique(c))
        .collect();
    let link = evaluate::iterative_link(
        dataset,
        &lifetimes,
        &candidates,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let index = ObsIndex::build(dataset);
    let entities = tracking::entities(&link);

    // At tiny scale the schedule spans well under a year, so scale the
    // "trackable" threshold with the data (the paper uses 365 days).
    let span = dataset.scans.last().unwrap().day - dataset.scans.first().unwrap().day;
    let min_days = (span * 3 / 5).min(365);

    let t = tracking::trackable(
        dataset,
        &lifetimes,
        &candidates,
        &entities,
        &index,
        min_days,
    );
    println!("trackable devices (> {min_days} days):");
    println!(
        "  same-certificate only: {}",
        thousands(t.before_linking as u64)
    );
    println!(
        "  with linking:          {} (+{:.1}%)",
        thousands(t.after_linking as u64),
        t.increase() * 100.0
    );

    let m = tracking::movement(dataset, &entities, &index, min_days, 3);
    println!(
        "\nAS movement among {} tracked devices:",
        thousands(m.tracked as u64)
    );
    println!(
        "  changed AS at least once: {} ({})",
        thousands(m.changed_as as u64),
        percent(m.changed_as as f64 / m.tracked.max(1) as f64)
    );
    println!(
        "  transitions:              {}",
        thousands(m.transitions as u64)
    );
    println!(
        "  changed exactly once:     {}",
        percent(m.changed_once_fraction)
    );
    println!("  busiest device:           {} changes", m.max_changes);
    println!(
        "  cross-country movers:     {}",
        thousands(m.country_movers as u64)
    );
    for ev in m.transfers.iter().take(5) {
        println!(
            "  bulk transfer at scan {:>3}: {} → {} ({} devices)",
            ev.at_scan.0,
            dataset.asdb.display_name(ev.from),
            dataset.asdb.display_name(ev.to),
            ev.devices
        );
    }

    // Walk one mobile device's timeline.
    if let Some((e, tl)) = entities
        .iter()
        .map(|e| {
            let tl = tracking::Timeline::of(dataset, &index, e);
            (e, tl)
        })
        .filter(|(_, tl)| tl.span_days(dataset) > min_days)
        .max_by_key(|(_, tl)| {
            let seq = tl.as_sequence(dataset);
            seq.windows(2).filter(|w| w[0].1 != w[1].1).count()
        })
    {
        println!(
            "\nmost mobile tracked device ({} certificates linked):",
            e.certs.len()
        );
        let seq = tl.as_sequence(dataset);
        let mut last = None;
        for ((scan, asn), (_, ip)) in seq.iter().zip(&tl.sightings) {
            if *asn != last {
                let name = asn.map_or("<unrouted>".to_string(), |a| dataset.asdb.display_name(a));
                println!(
                    "  day {:>6}  {:<16} {}",
                    dataset.scan_day(*scan),
                    ip.to_string(),
                    name
                );
                last = *asn;
            }
        }
    }

    let r = tracking::reassignment(dataset, &entities, &index, min_days, 4, 0.75);
    println!(
        "\nIP reassignment policies ({} ASes with enough devices):",
        r.per_as.len()
    );
    println!("  ≥90% static: {}", percent(r.fraction_above(0.9)));
    for (asn, churn) in r.per_scan_dynamic.iter().take(5) {
        println!(
            "  per-scan dynamic: {} ({} of devices change every scan)",
            dataset.asdb.display_name(*asn),
            percent(*churn)
        );
    }
}
