//! A zoo of invalid certificates: every invalidity class the paper's
//! pipeline distinguishes, constructed by hand and pushed through the
//! validator.
//!
//! ```sh
//! cargo run --example invalidity_zoo
//! ```

use silentcert::crypto::sig::{KeyPair, SimKeyPair};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::{CertificateBuilder, Name, Time};

fn key(seed: &str) -> KeyPair {
    KeyPair::Sim(SimKeyPair::from_seed(seed.as_bytes()))
}

fn years(a: i32, b: i32) -> (Time, Time) {
    (
        Time::from_ymd(a, 1, 1).unwrap(),
        Time::from_ymd(b, 1, 1).unwrap(),
    )
}

fn main() {
    // A minimal PKI: one trusted root, one intermediate.
    let root_key = key("root");
    let (nb, na) = years(2000, 2040);
    let root = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("Zoo Root CA"))
        .validity(nb, na)
        .ca(None)
        .self_signed(&root_key);
    let int_key = key("intermediate");
    let intermediate = CertificateBuilder::new()
        .serial_u64(2)
        .subject(Name::with_common_name("Zoo Issuing CA"))
        .issuer(root.subject.clone())
        .public_key(int_key.public())
        .validity(nb, na)
        .ca(Some(0))
        .sign_with(&root_key);
    let mut v = Validator::new(TrustStore::from_roots([root]));
    v.add_intermediate(&intermediate);

    let show = |label: &str, outcome: String| println!("{label:<46} → {outcome}");

    // (a) A proper leaf with its chain: valid.
    let leaf_key = key("site");
    let (nb, na) = years(2013, 2014);
    let leaf = CertificateBuilder::new()
        .serial_u64(3)
        .subject(Name::with_common_name("shop.example"))
        .issuer(intermediate.subject.clone())
        .public_key(leaf_key.public())
        .validity(nb, na)
        .sign_with(&int_key);
    show(
        "CA-issued leaf, chain presented",
        v.classify(&leaf, std::slice::from_ref(&intermediate))
            .to_string(),
    );

    // (b) Same leaf, broken chain: repaired from the pool ("transvalid").
    show(
        "CA-issued leaf, chain withheld",
        v.classify(&leaf, &[]).to_string(),
    );

    // (c) Textbook self-signed router cert (the 88.0% case).
    let router = key("router");
    let (nb, na) = years(2013, 2033);
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("192.168.1.1"))
        .validity(nb, na)
        .self_signed(&router);
    show(
        "self-signed, subject == issuer",
        v.classify(&c, &[]).to_string(),
    );

    // (d) Self-signed but with a vendor issuer name — openssl's error 19
    //     misses these; the paper (and we) re-verify the signature.
    let nas = key("nas");
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("WDMyCloud"))
        .issuer(Name::with_common_name("remotewd.com"))
        .public_key(nas.public())
        .validity(nb, na)
        .sign_with(&nas);
    show(
        "self-signed, vendor issuer name",
        v.classify(&c, &[]).to_string(),
    );

    // (e) Signed by a local CA minted at first boot (the 11.99% case).
    let local_ca = key("local-ca");
    let dev = key("device");
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("admin-console"))
        .issuer(Name::with_common_name("Local CA 0001"))
        .public_key(dev.public())
        .validity(nb, na)
        .sign_with(&local_ca);
    show(
        "signed by untrusted local CA",
        v.classify(&c, &[]).to_string(),
    );

    // (f) Claims the real issuing CA but the signature is garbage
    //     (the 0.01% "other" bucket).
    let forger = key("forger");
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("definitely.legit"))
        .issuer(intermediate.subject.clone())
        .public_key(key("victim").public())
        .validity(nb, na)
        .sign_with(&forger);
    show(
        "claims real CA, bad signature",
        v.classify(&c, &[]).to_string(),
    );

    // (g) Not parseable at all.
    show(
        "unparseable DER",
        v.classify_der(&[0xde, 0xad, 0xbe, 0xef], &[]).to_string(),
    );

    // (h) Negative validity period — invalid *dates*, but note the
    //     classification is still self-signed: the paper ignores expiry
    //     entirely (§4.2), and so do we.
    let confused = key("confused-clock");
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("confused"))
        .validity(
            Time::from_ymd(2014, 6, 1).unwrap(),
            Time::from_ymd(2014, 5, 1).unwrap(),
        )
        .self_signed(&confused);
    show(
        &format!("negative validity ({} days)", c.validity_period_days()),
        v.classify(&c, &[]).to_string(),
    );

    // (i) Not After in the year 3000 — fine by §4.2's rules.
    let optimist = key("optimist");
    let c = CertificateBuilder::new()
        .serial_u64(1)
        .subject(Name::with_common_name("forever-box"))
        .validity(
            Time::from_ymd(2012, 1, 1).unwrap(),
            Time::from_ymd(3000, 1, 1).unwrap(),
        )
        .self_signed(&optimist);
    show("Not After in year 3000", v.classify(&c, &[]).to_string());
}
