//! The full measurement pipeline on a simulated Internet, end to end:
//! simulate scans → classify validity → dedup → link → evaluate.
//!
//! This is the §4–§6 pipeline of the paper in one runnable program.
//!
//! ```sh
//! cargo run --release --example scan_pipeline
//! ```

use silentcert::core::dataset::CertId;
use silentcert::core::{compare, dedup, evaluate, linking};
use silentcert::sim::{simulate, ScaleConfig};
use silentcert::stats::table::{percent, thousands};

fn main() {
    let config = ScaleConfig::tiny();
    println!(
        "simulating {} devices / {} websites over {} scans ...",
        config.n_devices,
        config.n_websites,
        config.umich_scans + config.rapid7_scans
    );
    let out = simulate(&config);
    let dataset = &out.dataset;

    // §4: headline numbers.
    let h = compare::headline(dataset);
    println!("\n== validity (§4) ==");
    println!("unique certificates: {}", thousands(h.total_certs as u64));
    println!(
        "invalid:             {} ({})",
        thousands(h.invalid_certs as u64),
        percent(h.overall_invalid_fraction())
    );
    println!("  self-signed        {}", percent(h.self_signed_fraction));
    println!("  untrusted issuer   {}", percent(h.untrusted_fraction));
    println!(
        "per-scan invalid:    {} (mean)",
        percent(h.per_scan_invalid_mean)
    );

    // §5.1: longevity.
    let lifetimes = dataset.lifetimes();
    let le = compare::lifetime_ecdfs(dataset, &lifetimes);
    println!("\n== longevity (§5.1) ==");
    println!("invalid median lifetime: {:.0} days", le.invalid.median());
    println!("valid   median lifetime: {:.0} days", le.valid.median());

    // §6.2: dedup.
    let dd = dedup::analyze(dataset, dedup::DedupConfig::default());
    let invalid: Vec<CertId> = dataset
        .cert_ids()
        .filter(|&c| !dataset.cert(c).is_valid())
        .collect();
    let candidates: Vec<CertId> = invalid
        .iter()
        .copied()
        .filter(|&c| dd.is_unique(c))
        .collect();
    println!("\n== scan duplicates (§6.2) ==");
    println!(
        "{} of {} invalid certs map to a single device ({} excluded)",
        thousands(candidates.len() as u64),
        thousands(invalid.len() as u64),
        thousands((invalid.len() - candidates.len()) as u64),
    );

    // §6.3–6.4: link and evaluate.
    let link = evaluate::iterative_link(
        dataset,
        &lifetimes,
        &candidates,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    println!("\n== linking (§6.3–6.4) ==");
    println!(
        "linked {} certificates into {} groups ({} of candidates)",
        thousands(link.linked_certs() as u64),
        thousands(link.groups.len() as u64),
        percent(link.linked_certs() as f64 / candidates.len().max(1) as f64),
    );
    for field in linking::LinkField::ACCEPTED {
        if let Some(mean) = link.mean_group_size(field) {
            let groups = link.group_sizes(Some(field)).len();
            println!("  {field:<12} {groups:>6} groups, mean size {mean:.2}");
        }
    }

    let ba = evaluate::before_after(&lifetimes, &candidates, &link);
    println!(
        "single-scan entities: {} → {} after linking",
        percent(ba.before_single_scan),
        percent(ba.after_single_scan),
    );
    println!(
        "mean entity lifetime: {:.1} → {:.1} days",
        ba.before_mean_days, ba.after_mean_days,
    );

    // Ground truth (the simulator knows who served what — the paper had
    // no such oracle).
    let score = out.truth.score_linking(&link.groups);
    println!(
        "\nground truth: linking precision {} over {} pairs",
        percent(score.precision()),
        thousands(score.total_pairs),
    );
}
