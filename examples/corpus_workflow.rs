//! The disk-corpus workflow: export a simulated run as an on-disk scan
//! corpus, reload it the way real (preprocessed) scan data would arrive,
//! and confirm the analyses agree.
//!
//! ```sh
//! cargo run --release --example corpus_workflow
//! ```

use silentcert::core::{compare, ingest};
use silentcert::crypto::keyfile;
use silentcert::crypto::sig::{KeyPair, SimKeyPair};
use silentcert::sim::{export_corpus, ScaleConfig};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::pem::{pem_decode, pem_decode_all, pem_encode};
use silentcert::x509::Certificate;
use std::fs;

fn main() {
    let dir = std::env::temp_dir().join("silentcert-example-corpus");
    let _ = fs::remove_dir_all(&dir);

    // 1. Simulate and export.
    let mut config = ScaleConfig::tiny();
    config.n_devices = 300;
    config.n_websites = 150;
    let original = export_corpus(&config, &dir).expect("export");
    println!(
        "exported {} certificates / {} observations to {}",
        original.dataset.certs.len(),
        original.dataset.len(),
        dir.display()
    );
    for entry in fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        println!(
            "  {:>9} bytes  {}",
            entry.metadata().unwrap().len(),
            entry.file_name().to_string_lossy()
        );
    }

    // 2. Reload: rebuild the trust store from roots.pem, parse + classify
    //    every certificate (in parallel), rebuild the observation table.
    let roots_pem = fs::read_to_string(dir.join("roots.pem")).unwrap();
    let roots: Vec<Certificate> = pem_decode_all("CERTIFICATE", &roots_pem)
        .unwrap()
        .iter()
        .map(|der| Certificate::from_der(der).unwrap())
        .collect();
    let mut validator = Validator::new(TrustStore::from_roots(roots));
    let reloaded = ingest::load_dataset(&dir, &mut validator).expect("ingest");

    // 3. The headline analysis agrees exactly.
    let a = compare::headline(&original.dataset);
    let b = compare::headline(&reloaded);
    println!("\n                       in-memory   from-disk");
    println!(
        "certificates:         {:>9}   {:>9}",
        a.total_certs, b.total_certs
    );
    println!(
        "invalid share:        {:>8.1}%   {:>8.1}%",
        a.overall_invalid_fraction() * 100.0,
        b.overall_invalid_fraction() * 100.0
    );
    println!(
        "self-signed share:    {:>8.1}%   {:>8.1}%",
        a.self_signed_fraction * 100.0,
        b.self_signed_fraction * 100.0
    );
    assert_eq!(a.total_certs, b.total_certs);
    assert_eq!(a.invalid_certs, b.invalid_certs);

    // 4. Bonus: persist a device key pair alongside the corpus, the way a
    //    long-lived device stores its identity across reboots.
    let device_key = KeyPair::Sim(SimKeyPair::from_seed(b"my-nas"));
    let key_pem = pem_encode(keyfile::PEM_LABEL, &keyfile::to_der(&device_key));
    fs::write(dir.join("device.key"), &key_pem).unwrap();
    let restored = keyfile::from_der(
        &pem_decode(
            keyfile::PEM_LABEL,
            &fs::read_to_string(dir.join("device.key")).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(restored.public(), device_key.public());
    println!("\ndevice key persisted and restored: identity preserved");

    let _ = fs::remove_dir_all(&dir);
}
