//! Reproducibility guarantees: identical seeds produce bit-identical
//! datasets; different seeds produce different worlds.

use silentcert::sim::{export_corpus_faulted, simulate, FaultPlan, ScaleConfig};

#[test]
fn same_seed_same_world() {
    let a = simulate(&ScaleConfig::tiny());
    let b = simulate(&ScaleConfig::tiny());
    assert_eq!(a.dataset.certs.len(), b.dataset.certs.len());
    assert_eq!(a.dataset.observations, b.dataset.observations);
    assert_eq!(a.stats, b.stats);
    for (x, y) in a.dataset.certs.iter().zip(&b.dataset.certs) {
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.classification, y.classification);
    }
    assert_eq!(a.truth.cert_devices, b.truth.cert_devices);
}

#[test]
fn different_seed_different_world() {
    let mut config = ScaleConfig::tiny();
    config.seed ^= 0xdead_beef;
    let a = simulate(&ScaleConfig::tiny());
    let b = simulate(&config);
    assert_ne!(a.dataset.observations, b.dataset.observations);
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    // Same seed → byte-identical corrupted corpora and identical ledgers;
    // a different seed corrupts differently even over the same world.
    let base = std::env::temp_dir().join(format!("silentcert-detfault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut config = ScaleConfig::tiny();
    config.n_devices = 120;
    config.n_websites = 40;
    config.umich_scans = 5;
    config.rapid7_scans = 2;
    config.overlap_days = 1;
    config.faults = FaultPlan::chaos();

    let (_, ledger_a) = export_corpus_faulted(&config, &base.join("a")).unwrap();
    let (_, ledger_b) = export_corpus_faulted(&config, &base.join("b")).unwrap();
    assert_eq!(ledger_a, ledger_b);
    for f in ["certs.pem", "scans.csv"] {
        let x = std::fs::read(base.join("a").join(f)).unwrap();
        let y = std::fs::read(base.join("b").join(f)).unwrap();
        assert_eq!(x, y, "{f} differs between identically-seeded runs");
    }

    // The fault stream is keyed off the seed: a reseeded run must not
    // reproduce the same corruption pattern.
    let mut reseeded = config.clone();
    reseeded.seed ^= 0x5eed;
    let (_, ledger_c) = export_corpus_faulted(&reseeded, &base.join("c")).unwrap();
    assert_ne!(ledger_a, ledger_c);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn scan_schedule_is_stable_across_scales() {
    // Scaling the population must not silently change the scan calendar.
    let tiny = simulate(&ScaleConfig::tiny());
    let days: Vec<i64> = tiny.dataset.scans.iter().map(|s| s.day).collect();
    let tiny2 = simulate(&ScaleConfig::tiny());
    let days2: Vec<i64> = tiny2.dataset.scans.iter().map(|s| s.day).collect();
    assert_eq!(days, days2);
    // First scan lands on the paper's start date, 2012-06-10.
    assert_eq!(
        days[0],
        silentcert::asn1::time::days_from_civil(2012, 6, 10)
    );
}
