//! Reproducibility guarantees: identical seeds produce bit-identical
//! datasets; different seeds produce different worlds.

use silentcert::sim::{simulate, ScaleConfig};

#[test]
fn same_seed_same_world() {
    let a = simulate(&ScaleConfig::tiny());
    let b = simulate(&ScaleConfig::tiny());
    assert_eq!(a.dataset.certs.len(), b.dataset.certs.len());
    assert_eq!(a.dataset.observations, b.dataset.observations);
    assert_eq!(a.stats, b.stats);
    for (x, y) in a.dataset.certs.iter().zip(&b.dataset.certs) {
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.classification, y.classification);
    }
    assert_eq!(a.truth.cert_devices, b.truth.cert_devices);
}

#[test]
fn different_seed_different_world() {
    let mut config = ScaleConfig::tiny();
    config.seed ^= 0xdead_beef;
    let a = simulate(&ScaleConfig::tiny());
    let b = simulate(&config);
    assert_ne!(a.dataset.observations, b.dataset.observations);
}

#[test]
fn scan_schedule_is_stable_across_scales() {
    // Scaling the population must not silently change the scan calendar.
    let tiny = simulate(&ScaleConfig::tiny());
    let days: Vec<i64> = tiny.dataset.scans.iter().map(|s| s.day).collect();
    let tiny2 = simulate(&ScaleConfig::tiny());
    let days2: Vec<i64> = tiny2.dataset.scans.iter().map(|s| s.day).collect();
    assert_eq!(days, days2);
    // First scan lands on the paper's start date, 2012-06-10.
    assert_eq!(days[0], silentcert::asn1::time::days_from_civil(2012, 6, 10));
}
