//! End-to-end integration test: the full measurement pipeline over a
//! simulated Internet, asserting the paper's qualitative findings hold.

use silentcert::core::dataset::{CertId, Dataset};
use silentcert::core::{compare, dedup, devices, evaluate, linking, tracking};
use silentcert::sim::{simulate, ScaleConfig, SimOutput};
use std::sync::OnceLock;

/// One shared tiny-scale run for all assertions in this file.
fn sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| simulate(&ScaleConfig::tiny()))
}

fn dataset() -> &'static Dataset {
    &sim().dataset
}

fn invalid_unique() -> Vec<CertId> {
    let d = dataset();
    let dd = dedup::analyze(d, dedup::DedupConfig::default());
    d.cert_ids()
        .filter(|&c| !d.cert(c).is_valid() && dd.is_unique(c))
        .collect()
}

#[test]
fn invalid_certificates_dominate_the_corpus() {
    let h = compare::headline(dataset());
    assert!(
        (0.70..=0.95).contains(&h.overall_invalid_fraction()),
        "invalid share {}",
        h.overall_invalid_fraction()
    );
    // §4.2's breakdown: self-signed ≫ untrusted ≫ other.
    assert!(h.self_signed_fraction > 0.75);
    assert!((0.03..=0.25).contains(&h.untrusted_fraction));
    assert!(h.other_fraction < 0.01);
    assert!(h.self_signed_fraction > h.untrusted_fraction);
    assert!(h.untrusted_fraction > h.other_fraction);
}

#[test]
fn per_scan_fraction_sits_below_overall_fraction() {
    // The §4.2 disparity: 65% per scan vs 87.9% across all scans, caused
    // by ephemeral reissues accumulating over time.
    let h = compare::headline(dataset());
    assert!(h.per_scan_invalid_mean < h.overall_invalid_fraction());
    assert!(h.per_scan_invalid_min <= h.per_scan_invalid_mean);
    assert!(h.per_scan_invalid_mean <= h.per_scan_invalid_max);
}

#[test]
fn validity_periods_are_starkly_different() {
    let vp = compare::validity_periods(dataset());
    // Invalid: ~20-year median; valid: ~1-year median (Fig. 3).
    assert!(
        vp.invalid.median() > 3_000.0,
        "invalid median {}",
        vp.invalid.median()
    );
    assert!(
        vp.valid.median() < 900.0,
        "valid median {}",
        vp.valid.median()
    );
    assert!((0.02..=0.10).contains(&vp.invalid_negative_fraction));
    // The far-future tail exists.
    assert!(vp.invalid.max().unwrap() > 100_000.0);
}

#[test]
fn invalid_lifetimes_are_short() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let le = compare::lifetime_ecdfs(d, &lifetimes);
    assert!(le.invalid.median() < le.valid.median());
    // (the tiny preset's 18-scan window shortens reissue cadences; the
    // full schedule reaches ~45–60% single-scan)
    assert!(le.invalid_single_scan_fraction > 0.2);
    assert!(le.invalid_single_scan_fraction > le.valid_single_scan_fraction);
}

#[test]
fn notbefore_delta_is_bimodal() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let nd = compare::notbefore_delta(d, &lifetimes);
    assert!(nd.count > 50);
    // Mode 1: fresh reissues right before the scan.
    assert!(nd.ecdf.fraction_at_or_below(4.0) > 0.4);
    // Mode 2: epoch-clock devices, >1000 days.
    assert!(1.0 - nd.ecdf.fraction_at_or_below(1000.0) > 0.05);
    assert!(nd.negative_fraction < 0.10);
}

#[test]
fn invalid_keys_are_shared_more_than_valid_ones() {
    let (inv, val) = compare::key_sharing(dataset());
    assert!(
        inv.shared_fraction() > 0.25,
        "invalid sharing {}",
        inv.shared_fraction()
    );
    // One vendor key (Lancom) covers a visible slice on its own.
    assert!(inv.largest_group_fraction() > 0.02);
    assert!(inv.largest_group_fraction() > val.largest_group_fraction());
}

#[test]
fn known_issuers_appear_in_table1() {
    let (valid, invalid) = compare::top_issuers(dataset(), 10);
    let invalid_names: Vec<&str> = invalid.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        invalid_names.contains(&"www.lancom-systems.de"),
        "{invalid_names:?}"
    );
    assert!(invalid_names.iter().any(|n| n.starts_with("192.168.")));
    let valid_names: Vec<&str> = valid.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        valid_names.iter().any(|n| n.contains("Go Daddy")),
        "{valid_names:?}"
    );
}

#[test]
fn invalid_certs_come_from_access_networks() {
    let d = dataset();
    let ad = compare::as_diversity(d);
    let rows = compare::as_type_breakdown(d, &ad);
    let (transit_valid, transit_invalid) = rows
        .iter()
        .find(|r| r.0 == silentcert::net::AsType::TransitAccess)
        .map(|r| (r.1, r.2))
        .unwrap();
    let (content_valid, content_invalid) = rows
        .iter()
        .find(|r| r.0 == silentcert::net::AsType::Content)
        .map(|r| (r.1, r.2))
        .unwrap();
    // Table 2's signature shape.
    assert!(
        transit_invalid > 0.8,
        "invalid transit share {transit_invalid}"
    );
    assert!(content_invalid < 0.15);
    assert!(content_valid > 0.25, "valid content share {content_valid}");
    assert!(content_valid > content_invalid);
    assert!(transit_invalid > transit_valid);
}

#[test]
fn device_type_breakdown_is_router_heavy() {
    let rows = devices::device_type_breakdown(dataset(), 50);
    assert!(!rows.is_empty());
    let router = rows
        .iter()
        .find(|r| r.0 == devices::DeviceType::HomeRouterOrModem)
        .map(|r| r.1)
        .unwrap_or(0.0);
    assert!(router > 0.2, "router share {router}");
    // Table 4's winner is the router/modem category.
    assert_eq!(rows[0].0, devices::DeviceType::HomeRouterOrModem);
}

#[test]
fn dedup_excludes_only_a_small_slice() {
    let d = dataset();
    let dd = dedup::analyze(d, dedup::DedupConfig::default());
    assert!(
        dd.excluded_fraction() < 0.08,
        "excluded {}",
        dd.excluded_fraction()
    );
    assert!(dd.unique_count() > 0);
}

#[test]
fn public_key_is_the_strongest_linking_feature() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let candidates = invalid_unique();
    let reports = evaluate::evaluate_fields(
        d,
        &lifetimes,
        &candidates,
        &linking::LinkField::ALL,
        linking::LinkConfig::default(),
    );
    let get = |f: linking::LinkField| reports.iter().find(|r| r.field == f).unwrap();
    let pk = get(linking::LinkField::PublicKey);
    // Table 6: PK links the most certificates (at tiny scale Common Name
    // can edge ahead, so require PK in the top two), with high AS
    // consistency.
    let better_than_pk = reports
        .iter()
        .filter(|r| r.total_linked > pk.total_linked)
        .count();
    assert!(better_than_pk <= 1, "PK rank {}", better_than_pk + 1);
    assert!(
        pk.as_consistency > 0.85,
        "PK AS consistency {}",
        pk.as_consistency
    );
    assert!(pk.total_linked > 100);
    // Consistency is ordered: IP ≤ /24 ≤ AS (coarser levels can only help).
    for r in &reports {
        if r.total_linked > 0 {
            assert!(r.ip_consistency <= r.s24_consistency + 1e-9, "{}", r.field);
            assert!(r.s24_consistency <= r.as_consistency + 1e-9, "{}", r.field);
        }
    }
}

#[test]
fn linking_is_precise_against_ground_truth() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let candidates = invalid_unique();
    let link = evaluate::iterative_link(
        d,
        &lifetimes,
        &candidates,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    assert!(link.linked_certs() > 100);
    let score = sim().truth.score_linking(&link.groups);
    assert!(score.precision() > 0.95, "precision {}", score.precision());
    assert!(score.group_purity() > 0.9);
}

#[test]
fn linking_improves_observed_lifetimes() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let candidates = invalid_unique();
    let link = evaluate::iterative_link(
        d,
        &lifetimes,
        &candidates,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let ba = evaluate::before_after(&lifetimes, &candidates, &link);
    // §6.4.4's direction: fewer single-scan entities, longer mean life.
    assert!(ba.after_mean_days > ba.before_mean_days);
    assert!(ba.after_single_scan <= ba.before_single_scan + 1e-9);
}

#[test]
fn tracking_finds_more_devices_after_linking() {
    let d = dataset();
    let lifetimes = d.lifetimes();
    let candidates = invalid_unique();
    let link = evaluate::iterative_link(
        d,
        &lifetimes,
        &candidates,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let index = evaluate::ObsIndex::build(d);
    let ents = tracking::entities(&link);
    let span = d.scans.last().unwrap().day - d.scans.first().unwrap().day;
    let min_days = span * 3 / 5;
    let t = tracking::trackable(d, &lifetimes, &candidates, &ents, &index, min_days);
    assert!(t.before_linking > 0);
    assert!(t.after_linking > t.before_linking, "{t:?}");

    let m = tracking::movement(d, &ents, &index, min_days, 3);
    assert!(m.tracked > 0);
    assert!(m.changed_as > 0);
    // Verizon→MCI style bulk transfer is detected.
    assert!(!m.transfers.is_empty());
    // Mobile (PlayBook-style) devices rack up many changes.
    assert!(m.max_changes >= 2, "max changes {}", m.max_changes);

    let r = tracking::reassignment(d, &ents, &index, min_days, 4, 0.75);
    assert!(!r.per_as.is_empty());
    // German fast-churn ISPs are flagged as per-scan dynamic.
    let dynamic_asns: Vec<u32> = r.per_scan_dynamic.iter().map(|(a, _)| a.0).collect();
    assert!(
        dynamic_asns.iter().any(|a| [3320, 3209, 6805].contains(a)),
        "dynamic ASes {dynamic_asns:?}"
    );
    // Most qualifying ASes lean static (Fig. 11).
    assert!(
        r.fraction_above(0.9) > 0.25,
        "static share {}",
        r.fraction_above(0.9)
    );
}

#[test]
fn fritzbox_population_drives_pk_linking_inconsistency() {
    // §6.4.2: FRITZ!Box devices sit in fast-churn German ISPs, so their
    // PK-linked groups have low IP-level but high AS-level consistency.
    let d = dataset();
    let lifetimes = d.lifetimes();
    let candidates = invalid_unique();
    let groups = linking::link_on_field(
        d,
        &lifetimes,
        &candidates,
        linking::LinkField::San,
        linking::LinkConfig::default(),
    );
    // The fixed FRITZ!Box SAN cannot link (it is shared by overlapping
    // devices); only the per-device dyndns SANs survive.
    for g in &groups {
        assert_ne!(g.value, "fritz.fonwlan.box");
    }
}
