//! Ablations of the methodology's design choices (DESIGN.md §4): flipping
//! each §6 parameter must move results in the predicted direction.

use silentcert::core::dataset::CertId;
use silentcert::core::{dedup, evaluate, linking};
use silentcert::sim::{simulate, ScaleConfig, SimOutput};
use std::sync::OnceLock;

fn sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| simulate(&ScaleConfig::tiny()))
}

fn candidates(dd: &dedup::DedupResult) -> Vec<CertId> {
    let d = &sim().dataset;
    d.cert_ids()
        .filter(|&c| !d.cert(c).is_valid() && dd.is_unique(c))
        .collect()
}

#[test]
fn dedup_threshold_monotone() {
    let d = &sim().dataset;
    let counts: Vec<usize> = [1u32, 2, 3]
        .into_iter()
        .map(|max_ips_per_scan| {
            let cfg = dedup::DedupConfig {
                max_ips_per_scan,
                every_scan_exception: false,
            };
            dedup::analyze(d, cfg).unique_count()
        })
        .collect();
    // Looser thresholds keep at least as many certificates.
    assert!(
        counts[0] <= counts[1] && counts[1] <= counts[2],
        "{counts:?}"
    );
    assert!(counts[0] < counts[2], "thresholds must bite: {counts:?}");
}

#[test]
fn exception_rule_only_removes_certificates() {
    let d = &sim().dataset;
    let with = dedup::analyze(d, dedup::DedupConfig::default());
    let without = dedup::analyze(
        d,
        dedup::DedupConfig {
            every_scan_exception: false,
            ..dedup::DedupConfig::default()
        },
    );
    assert!(with.unique_count() <= without.unique_count());
    // The dual-homed population exists, so the rule actually fires.
    assert!(with.unique_count() < without.unique_count());
}

#[test]
fn overlap_allowance_trades_volume_for_precision() {
    let d = &sim().dataset;
    let lifetimes = d.lifetimes();
    let dd = dedup::analyze(d, dedup::DedupConfig::default());
    let certs = candidates(&dd);
    let mut linked = Vec::new();
    let mut precision = Vec::new();
    for max_overlap_scans in [0u32, 1, 3] {
        let cfg = linking::LinkConfig { max_overlap_scans };
        let result =
            evaluate::iterative_link(d, &lifetimes, &certs, &linking::LinkField::ACCEPTED, cfg);
        linked.push(result.linked_certs());
        precision.push(sim().truth.score_linking(&result.groups).precision());
    }
    // More tolerance links more certificates…
    assert!(
        linked[0] <= linked[1] && linked[1] <= linked[2],
        "{linked:?}"
    );
    assert!(linked[0] < linked[2]);
    // …at (weakly) lower precision.
    assert!(precision[2] <= precision[0] + 1e-9, "{precision:?}");
}

#[test]
fn field_order_changes_attribution_not_coverage_much() {
    let d = &sim().dataset;
    let lifetimes = d.lifetimes();
    let dd = dedup::analyze(d, dedup::DedupConfig::default());
    let certs = candidates(&dd);
    let forward = evaluate::iterative_link(
        d,
        &lifetimes,
        &certs,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let mut reversed_order = linking::LinkField::ACCEPTED;
    reversed_order.reverse();
    let reversed = evaluate::iterative_link(
        d,
        &lifetimes,
        &certs,
        &reversed_order,
        linking::LinkConfig::default(),
    );
    // Total coverage is similar (fields overlap)…
    let (a, b) = (
        forward.linked_certs() as f64,
        reversed.linked_certs() as f64,
    );
    assert!((a - b).abs() / a.max(b) < 0.25, "forward {a}, reversed {b}");
    // …but the first field claims the lion's share in each direction.
    let pk_forward = forward
        .group_sizes(Some(linking::LinkField::PublicKey))
        .len();
    let pk_reversed = reversed
        .group_sizes(Some(linking::LinkField::PublicKey))
        .len();
    assert!(
        pk_forward > pk_reversed,
        "PK groups: {pk_forward} vs {pk_reversed}"
    );
}

#[test]
fn excluded_fields_would_hurt_consistency() {
    // Including NotBefore/NotAfter (which the paper rejects) must lower —
    // or at best not improve — ground-truth precision.
    let d = &sim().dataset;
    let lifetimes = d.lifetimes();
    let dd = dedup::analyze(d, dedup::DedupConfig::default());
    let certs = candidates(&dd);
    let clean = evaluate::iterative_link(
        d,
        &lifetimes,
        &certs,
        &linking::LinkField::ACCEPTED,
        linking::LinkConfig::default(),
    );
    let mut with_dates: Vec<linking::LinkField> = linking::LinkField::ACCEPTED.to_vec();
    with_dates.push(linking::LinkField::NotBefore);
    with_dates.push(linking::LinkField::NotAfter);
    let dirty = evaluate::iterative_link(
        d,
        &lifetimes,
        &certs,
        &with_dates,
        linking::LinkConfig::default(),
    );
    let p_clean = sim().truth.score_linking(&clean.groups).precision();
    let p_dirty = sim().truth.score_linking(&dirty.groups).precision();
    assert!(
        p_dirty <= p_clean + 1e-9,
        "clean {p_clean}, with dates {p_dirty}"
    );
    // And the date fields do link something (they are non-unique).
    assert!(dirty.linked_certs() >= clean.linked_certs());
}
