//! Chaos pipeline: simulate → export → inject faults → ingest.
//!
//! The fault injector returns an exact [`FaultLedger`] of everything it
//! broke, and every fault class is constructed to have a *guaranteed*
//! ingest-visible effect (a `!` can never be valid base64; deleting a
//! body line shortens the DER below what its header claims; corrupting
//! the first base64 character destroys the leading SEQUENCE tag; a torn
//! CSV row cannot parse). That lets this test demand exact equality
//! between the injector's ground truth and the lenient ingest report —
//! not just "some errors were noticed".

use silentcert::core::{compare, ingest};
use silentcert::sim::{export_corpus, export_corpus_faulted, FaultPlan, ScaleConfig};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::pem::pem_decode_all;
use silentcert::x509::Certificate;
use std::fs;
use std::path::Path;

fn chaos_config() -> ScaleConfig {
    let mut config = ScaleConfig::tiny();
    config.n_devices = 250;
    config.n_websites = 120;
    config.umich_scans = 8;
    config.rapid7_scans = 4;
    config.overlap_days = 1;
    config
}

fn validator_from(dir: &Path) -> Validator {
    let roots_pem = fs::read_to_string(dir.join("roots.pem")).unwrap();
    let roots: Vec<Certificate> = pem_decode_all("CERTIFICATE", &roots_pem)
        .unwrap()
        .iter()
        .map(|der| Certificate::from_der(der).unwrap())
        .collect();
    Validator::new(TrustStore::from_roots(roots))
}

#[test]
fn lenient_ingest_reconciles_exactly_with_fault_ledger() {
    let base = std::env::temp_dir().join(format!("silentcert-chaos-{}", std::process::id()));
    let clean_dir = base.join("clean");
    let chaos_dir = base.join("chaos");
    let _ = fs::remove_dir_all(&base);

    // Baseline: the same simulation exported without faults. The fault
    // stream is independent of the simulation streams, so the pre-injection
    // corpora are identical.
    let clean_config = chaos_config();
    export_corpus(&clean_config, &clean_dir).expect("clean export");
    let (clean_ds, clean) = ingest::load_dataset_with(
        &clean_dir,
        &mut validator_from(&clean_dir),
        &ingest::IngestOptions::lenient(),
    )
    .expect("clean lenient ingest");
    // A clean corpus quarantines nothing, in any mode.
    assert_eq!(clean.total_dropped(), 0);
    assert_eq!(clean.pem_bad_blocks, 0);
    assert_eq!(clean.csv_syntax_errors, 0);
    assert_eq!(clean.duplicate_rows, 0);
    assert_eq!(clean.unknown_fingerprints, 0);
    assert_eq!(clean.classify_panics, 0);
    let clean_headline = compare::headline(&clean_ds);

    let mut config = chaos_config();
    config.faults = FaultPlan::chaos();
    let (_, ledger) = export_corpus_faulted(&config, &chaos_dir).expect("faulted export");
    // The chaos preset must exercise every pathology, or the identities
    // below would pass vacuously.
    assert!(ledger.pem_bitflipped > 0, "{ledger:?}");
    assert!(ledger.pem_truncated > 0, "{ledger:?}");
    assert!(ledger.pem_der_corrupted > 0, "{ledger:?}");
    assert!(ledger.garbage_lines > 0, "{ledger:?}");
    assert!(ledger.csv_torn > 0, "{ledger:?}");
    assert!(ledger.csv_duplicated > 0, "{ledger:?}");
    assert!(ledger.csv_unknown_fp > 0, "{ledger:?}");
    assert!(
        ledger.scan_aborts > 0 && ledger.rows_dropped_by_abort > 0,
        "{ledger:?}"
    );
    assert!(ledger.orphaned_rows > 0, "{ledger:?}");

    let (ds, report) = ingest::load_dataset_with(
        &chaos_dir,
        &mut validator_from(&chaos_dir),
        &ingest::IngestOptions::lenient(),
    )
    .expect("lenient ingest of a corrupted corpus must succeed");

    // --- exact reconciliation against ground truth -----------------------
    // Faults alter blocks in place, never add or remove armor pairs.
    assert_eq!(report.pem_blocks, ledger.pem_blocks);
    // Only bit flips produce invalid base64 (quarantined blocks); line
    // deletion and DER corruption decode fine and fail at parse time.
    assert_eq!(report.pem_bad_blocks, ledger.pem_bitflipped);
    assert_eq!(report.pem_stray_lines, ledger.garbage_lines);
    assert!(!report.pem_unterminated);
    assert_eq!(
        report.cert_parse_failures,
        clean.cert_parse_failures + ledger.pem_truncated + ledger.pem_der_corrupted
    );
    assert_eq!(
        report.certs_parsed,
        ledger.pem_blocks - ledger.pem_bitflipped - report.cert_parse_failures
    );
    assert_eq!(report.classify_panics, 0);

    // Aborts drop rows before the reader ever sees them; duplicates add
    // extra copies; tears mangle rows but do not remove the line.
    assert_eq!(
        report.rows_seen,
        ledger.csv_rows - ledger.rows_dropped_by_abort + ledger.csv_duplicated
    );
    assert_eq!(report.csv_syntax_errors, ledger.csv_torn);
    assert_eq!(
        report.duplicate_rows,
        clean.duplicate_rows + ledger.csv_duplicated
    );
    // Unknown fingerprints come from two independent sources: rows whose
    // fingerprint the injector rewrote, and rows orphaned because their
    // certificate's PEM block was destroyed.
    assert_eq!(
        report.unknown_fingerprints,
        ledger.csv_unknown_fp + ledger.orphaned_rows
    );
    assert_eq!(
        report.rows_accepted,
        report.rows_seen
            - report.csv_syntax_errors
            - report.duplicate_rows
            - report.unknown_fingerprints
    );
    assert_eq!(ds.len(), report.rows_accepted);

    // --- degraded-mode analysis stays close to the clean run -------------
    // The chaos preset corrupts a few percent of each file. Corruption can
    // amplify: losing one intermediate CA's block invalidates every leaf
    // that chained through it. Headline fractions still must not move by
    // more than a few points.
    let h = compare::headline(&ds);
    let close = |a: f64, b: f64| (a - b).abs() < 0.10;
    assert!(
        close(
            h.overall_invalid_fraction(),
            clean_headline.overall_invalid_fraction()
        ),
        "invalid fraction drifted: {} vs clean {}",
        h.overall_invalid_fraction(),
        clean_headline.overall_invalid_fraction()
    );
    assert!(
        close(h.self_signed_fraction, clean_headline.self_signed_fraction),
        "self-signed fraction drifted: {} vs clean {}",
        h.self_signed_fraction,
        clean_headline.self_signed_fraction
    );
    assert!(
        close(
            h.per_scan_invalid_mean,
            clean_headline.per_scan_invalid_mean
        ),
        "per-scan invalid drifted: {} vs clean {}",
        h.per_scan_invalid_mean,
        clean_headline.per_scan_invalid_mean
    );

    // --- strict mode refuses the same corpus, deterministically ----------
    let err1 = ingest::load_dataset(&chaos_dir, &mut validator_from(&chaos_dir))
        .expect_err("strict ingest must reject a corrupted corpus");
    let err2 = ingest::load_dataset(&chaos_dir, &mut validator_from(&chaos_dir))
        .expect_err("strict ingest must reject a corrupted corpus");
    assert_eq!(err1.to_string(), err2.to_string());

    let _ = fs::remove_dir_all(&base);
}
