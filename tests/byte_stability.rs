//! Export → ingest → re-export byte-stability: a corpus read back from
//! disk and written out again must reproduce the original table files
//! byte-for-byte. This is what makes the scan runtime's checkpoint story
//! sound — any tool in the chain can re-materialize the corpus without
//! perturbing it.

use silentcert::sim::{export_corpus, export_tables, ScaleConfig};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::pem::pem_decode_all;
use silentcert::x509::Certificate;
use std::fs;
use std::path::Path;

fn validator_from(dir: &Path) -> Validator {
    let roots_pem = fs::read_to_string(dir.join("roots.pem")).unwrap();
    let roots: Vec<Certificate> = pem_decode_all("CERTIFICATE", &roots_pem)
        .unwrap()
        .iter()
        .map(|der| Certificate::from_der(der).unwrap())
        .collect();
    Validator::new(TrustStore::from_roots(roots))
}

#[test]
fn ingested_corpus_re_exports_byte_identically() {
    let dir = std::env::temp_dir().join(format!("silentcert-bytestab-{}", std::process::id()));
    let redir = dir.join("re-export");
    let _ = fs::remove_dir_all(&dir);

    let mut config = ScaleConfig::tiny();
    config.n_devices = 120;
    config.n_websites = 50;
    config.umich_scans = 5;
    config.rapid7_scans = 3;
    config.overlap_days = 1;
    export_corpus(&config, &dir).expect("export");

    let mut validator = validator_from(&dir);
    let ingested = silentcert::core::ingest::load_dataset(&dir, &mut validator).expect("ingest");

    fs::create_dir_all(&redir).unwrap();
    export_tables(&ingested, &redir).expect("re-export");
    for f in ["scans.csv", "routing.csv", "asdb.csv"] {
        assert_eq!(
            fs::read(dir.join(f)).unwrap(),
            fs::read(redir.join(f)).unwrap(),
            "{f} not byte-stable across ingest → re-export"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scanned_corpus_with_completeness_survives_ingest() {
    use silentcert::sim::{run_scan, NetFaultPlan, ScanOptions, ScanOutcome};

    let dir = std::env::temp_dir().join(format!("silentcert-scan-ingest-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let mut config = ScaleConfig::tiny();
    config.n_devices = 120;
    config.n_websites = 50;
    config.umich_scans = 5;
    config.rapid7_scans = 3;
    config.overlap_days = 1;
    config.net_faults = NetFaultPlan::chaos();
    let ScanOutcome::Complete(report) =
        run_scan(&config, &dir, &ScanOptions::default()).expect("scan")
    else {
        panic!("scan did not complete")
    };
    assert!(report.dropped_hosts > 0, "chaos run lost nothing");

    let mut validator = validator_from(&dir);
    let ingested = silentcert::core::ingest::load_dataset(&dir, &mut validator).expect("ingest");

    // The sidecar attached to every surviving scan, and the loss-adjusted
    // headline band is available and brackets the point estimate.
    assert!(ingested.has_completeness());
    let h = silentcert::core::compare::headline(&ingested);
    assert!(h.has_loss_band());
    assert!(h.per_scan_invalid_adjusted_lo <= h.per_scan_invalid_mean + 1e-12);
    assert!(h.per_scan_invalid_adjusted_hi >= h.per_scan_invalid_mean - 1e-12);
    let _ = fs::remove_dir_all(&dir);
}
