//! End-to-end disk round-trip: simulate → export corpus → ingest from
//! disk → the re-parsed, re-classified dataset must agree with the
//! in-memory one on every analysis the pipeline runs.

use silentcert::core::{compare, dedup, ingest};
use silentcert::sim::{export_corpus, ScaleConfig};
use silentcert::validate::{TrustStore, Validator};
use silentcert::x509::pem::pem_decode_all;
use silentcert::x509::Certificate;
use std::fs;

#[test]
fn corpus_roundtrip_preserves_every_analysis() {
    let dir = std::env::temp_dir().join(format!("silentcert-roundtrip-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let mut config = ScaleConfig::tiny();
    config.n_devices = 250;
    config.n_websites = 120;
    config.umich_scans = 8;
    config.rapid7_scans = 4;
    config.overlap_days = 1;

    let original = export_corpus(&config, &dir).expect("export");

    // Rebuild the validator from the exported root store, exactly as an
    // external consumer would.
    let roots_pem = fs::read_to_string(dir.join("roots.pem")).unwrap();
    let roots: Vec<Certificate> = pem_decode_all("CERTIFICATE", &roots_pem)
        .unwrap()
        .iter()
        .map(|der| Certificate::from_der(der).unwrap())
        .collect();
    assert_eq!(roots.len(), config.trust_store_size);
    let mut validator = Validator::new(TrustStore::from_roots(roots));
    let ingested = ingest::load_dataset(&dir, &mut validator).expect("ingest");

    let a = &original.dataset;
    let b = &ingested;

    // Same populations.
    assert_eq!(a.certs.len(), b.certs.len());
    assert_eq!(a.scans.len(), b.scans.len());
    assert_eq!(a.len(), b.len());

    // Certificates agree field-for-field after re-parsing and
    // re-classification (matched by fingerprint; intern order differs).
    use silentcert::validate::Classification;
    use std::collections::HashMap;
    let by_fp: HashMap<_, _> = b.certs.iter().map(|m| (m.fingerprint, m)).collect();
    // The corpus format does not record which chain each server presented,
    // so every pool-repaired chain ingests as "transvalid"; normalize that
    // flag before comparing.
    let normalize = |mut m: silentcert::core::CertMeta| {
        if let Classification::Valid { chain_len, .. } = m.classification {
            m.classification = Classification::Valid {
                chain_len,
                transvalid: false,
            };
        }
        m
    };
    for meta in &a.certs {
        let other = *by_fp
            .get(&meta.fingerprint)
            .expect("cert survived the round trip");
        assert_eq!(
            normalize(meta.clone()),
            normalize(other.clone()),
            "metadata drift for {}",
            meta.fingerprint
        );
    }

    // Headline analysis is identical.
    let ha = compare::headline(a);
    let hb = compare::headline(b);
    assert_eq!(ha.invalid_certs, hb.invalid_certs);
    assert_eq!(ha.self_signed_fraction, hb.self_signed_fraction);
    assert_eq!(ha.unique_ips, hb.unique_ips);
    assert_eq!(ha.per_scan_invalid_mean, hb.per_scan_invalid_mean);

    // Lifetime and dedup pipelines agree.
    let la: Vec<_> = a.lifetimes();
    let lb: Vec<_> = b.lifetimes();
    assert_eq!(
        la.iter().flatten().map(|l| l.days()).sum::<i64>(),
        lb.iter().flatten().map(|l| l.days()).sum::<i64>()
    );
    let da = dedup::analyze(a, dedup::DedupConfig::default());
    let db = dedup::analyze(b, dedup::DedupConfig::default());
    assert_eq!(da.unique_count(), db.unique_count());

    // Routing history and AS metadata survive.
    for obs in &a.observations {
        let day = a.scan_day(obs.scan);
        assert_eq!(
            a.routing.lookup_asn(day, obs.ip),
            b.routing.lookup_asn(day, obs.ip),
            "routing drift at {} day {day}",
            obs.ip
        );
    }
    assert_eq!(a.asdb.len(), b.asdb.len());

    let _ = fs::remove_dir_all(&dir);
}
