//! Fig. 9 of the paper as an executable scenario: three groups of
//! certificates sharing public keys PK1, PK2, PK3 across four scans, where
//! PK1 and PK2 must link and PK3 must not.

use silentcert::core::dataset::{CertMeta, DatasetBuilder, Operator};
use silentcert::core::linking::{link_on_field, LinkConfig, LinkField};
use silentcert::crypto::sig::{KeyPair, SimKeyPair};
use silentcert::net::Ipv4;
use silentcert::validate::Classification;
use silentcert::x509::{Certificate, CertificateBuilder, Name, Time};

/// Build a real certificate for device `cn` with key seed `key`.
fn cert(cn: &str, key: &str, serial: u64) -> Certificate {
    let kp = KeyPair::Sim(SimKeyPair::from_seed(key.as_bytes()));
    CertificateBuilder::new()
        .serial_u64(serial)
        .subject(Name::with_common_name(cn))
        .validity(
            Time::from_ymd(2013, 1, 1).unwrap(),
            Time::from_ymd(2033, 1, 1).unwrap(),
        )
        .self_signed(&kp)
}

fn ip(s: &str) -> Ipv4 {
    s.parse().unwrap()
}

#[test]
fn figure9_worked_example() {
    // Certificates named after the figure. PK1: certs 1–2; PK2: certs 3–5;
    // PK3: certs 6–8 (cert 6 and 7 overlap on two scans).
    let c1 = cert("device-a", "PK1", 1);
    let c2 = cert("device-a", "PK1", 2);
    let c3 = cert("device-b", "PK2", 3);
    let c4 = cert("device-b", "PK2", 4);
    let c5 = cert("device-b", "PK2", 5);
    let c6 = cert("device-c", "PK3", 6);
    let c7 = cert("device-d", "PK3", 7);
    let c8 = cert("device-c", "PK3", 8);

    // Sanity: same seed ⇒ same key; the three groups have distinct keys.
    assert_eq!(c1.public_key, c2.public_key);
    assert_eq!(c3.public_key, c4.public_key);
    assert_ne!(c1.public_key, c3.public_key);
    assert_ne!(c3.public_key, c6.public_key);

    let mut b = DatasetBuilder::new();
    let ids: Vec<_> = [&c1, &c2, &c3, &c4, &c5, &c6, &c7, &c8]
        .iter()
        .map(|c| {
            b.intern_cert(CertMeta::from_certificate(
                c,
                Classification::Invalid(silentcert::validate::InvalidityReason::SelfSigned),
            ))
        })
        .collect();
    let (s1, s2, s3, s4) = (
        b.add_scan(0, Operator::UMich),
        b.add_scan(7, Operator::UMich),
        b.add_scan(14, Operator::UMich),
        b.add_scan(21, Operator::UMich),
    );

    // Figure 9's layout:
    //   IP1: cert1 in scans 1–2; IP2: cert2 in scans 3(not shown)–4 with a
    //   gap at scan 3 (the paper draws "? ? ?" — never observed there).
    b.add_observation(s1, ip("1.0.0.1"), ids[0]);
    b.add_observation(s2, ip("1.0.0.1"), ids[0]);
    b.add_observation(s4, ip("1.0.0.2"), ids[1]);
    //   PK2: cert3 on IP3 scans 1–2, cert4 overlaps cert3 on scan 2 at IP4
    //   (single-scan overlap), then cert4 continues, cert5 at scan 4.
    b.add_observation(s1, ip("2.0.0.3"), ids[2]);
    b.add_observation(s2, ip("2.0.0.3"), ids[2]);
    b.add_observation(s2, ip("2.0.0.4"), ids[3]);
    b.add_observation(s3, ip("2.0.0.4"), ids[3]);
    b.add_observation(s4, ip("2.0.0.5"), ids[4]);
    //   PK3: certs 6 and 7 overlap on scans 2 AND 3 → two devices.
    b.add_observation(s1, ip("3.0.0.6"), ids[5]);
    b.add_observation(s2, ip("3.0.0.6"), ids[5]);
    b.add_observation(s3, ip("3.0.0.6"), ids[5]);
    b.add_observation(s2, ip("3.0.0.7"), ids[6]);
    b.add_observation(s3, ip("3.0.0.7"), ids[6]);
    b.add_observation(s4, ip("3.0.0.8"), ids[7]);
    let dataset = b.finish();

    let lifetimes = dataset.lifetimes();
    let groups = link_on_field(
        &dataset,
        &lifetimes,
        &ids,
        LinkField::PublicKey,
        LinkConfig::default(),
    );

    // PK1 and PK2 link; PK3 does not.
    assert_eq!(groups.len(), 2, "{groups:?}");
    let sizes: Vec<usize> = groups.iter().map(|g| g.certs.len()).collect();
    assert!(sizes.contains(&2), "PK1 group of 2");
    assert!(sizes.contains(&3), "PK2 group of 3");
    for g in &groups {
        assert!(!g.certs.contains(&ids[5]), "PK3 certs must stay unlinked");
        assert!(!g.certs.contains(&ids[6]));
        assert!(!g.certs.contains(&ids[7]));
    }
}
